//! Structural elaboration of the GA core — the RT-level datapath +
//! controller the AUDI flow emits, wired gate-by-gate.
//!
//! Every register of the cycle-accurate model (`ga_core::hwcore`), the
//! complete datapath component inventory (selection multiplier,
//! accumulators, comparators, crossover/mutation networks, counters,
//! D-input mux trees) and the 23-state one-hot controller are
//! instantiated through the verified component library and synthesized
//! into one connected netlist. The CA RNG module is included, matching
//! the paper's "GA module (GA core, RNG module, and the GA memory)"
//! clock domain (the memory itself is block RAM, counted separately).
//!
//! Functional verification of the *whole* core happens at the
//! cycle-accurate level (the differential tests); this netlist is the
//! *physical* model — its component builders are individually proven
//! equivalent, and its purpose is the Table VI resource/timing report.
//!
//! The fallible entry points ([`try_elaborate_ga_core`],
//! [`try_elaborate_ca_rng`]) surface any construction defect as a
//! [`SynthError`]; the infallible wrappers keep the original signatures
//! for benches and examples, and are safe because the elaboration is
//! covered by tests and `galint`.

use crate::builder::Builder;
use crate::device::Xc2vp30;
use crate::error::SynthError;
use crate::fsm::{FsmSpec, Guard, Transition};
use crate::mapper::{map_to_lut4, MapReport};
use crate::netlist::{NetId, Netlist};
use crate::timing::{DelayModel, TimingReport};

/// Table VI regenerated.
#[derive(Debug, Clone, PartialEq)]
pub struct GaCoreReport {
    /// Technology-mapping result.
    pub map: MapReport,
    /// Static timing result.
    pub timing: TimingReport,
    /// Occupied slices (0.75 packing efficiency).
    pub slices: u32,
    /// Slice utilization percent on the xc2vp30.
    pub slice_pct: u32,
    /// Total gates in the netlist.
    pub gates: usize,
    /// Scan-chain length (flip-flop count).
    pub scan_ffs: usize,
}

/// Select-prioritized D-input mux chain: `sources` are (select, value)
/// pairs scanned in order; when no select is hot the register holds.
fn mux_word(
    bld: &mut Builder,
    hold: &[NetId],
    sources: &[(NetId, Vec<NetId>)],
) -> Result<Vec<NetId>, SynthError> {
    let mut acc: Vec<NetId> = hold.to_vec();
    for (sel, val) in sources.iter().rev() {
        acc = bld.mux2_bus(*sel, val, &acc)?;
    }
    Ok(acc)
}

/// Zero-extend a bus.
fn zext(bld: &mut Builder, bus: &[NetId], width: usize) -> Vec<NetId> {
    let mut out = bus.to_vec();
    while out.len() < width {
        out.push(bld.const0());
    }
    out
}

/// A fresh constant-zero bit.
fn zero_bit(bld: &mut Builder) -> NetId {
    bld.const0()
}

/// The GA controller specification: the 23 named states of the
/// cycle-accurate FSM with its actual branch structure (condition
/// indices documented inline). Public so the `galint` static checker
/// can lint the transition table directly — handshake-wait states are
/// recognized by their `*Wait` names.
pub fn ga_controller_spec() -> FsmSpec {
    // Condition inputs:
    //  0 start_ga        5 scan_hit (cum>thr or last)   10 i_eq_pop
    //  1 ga_load         6 sel_phase                    11 gen_eq_ngens
    //  2 data_valid      7 off_phase                    12 multcnt_zero
    //  3 fit_valid_any   8 idx_eq_pop                   13 test
    //  4 (unused: decisions fold into datapath)  9 (reserved)
    let t = |from: usize, guard: Guard, to: usize| Transition { from, guard, to };
    FsmSpec {
        n_states: 23,
        n_conds: 14,
        transitions: vec![
            // 0 Idle
            t(0, Guard::when(1, true), 1), // → InitParams
            t(0, Guard::when(0, true), 2), // → Start
            // 1 InitParams
            t(1, Guard::when(1, false), 0),
            // 2 Start
            t(2, Guard::always(), 3),
            // 3 InitPopDraw → 4 FitReq → 5 FitWait → 6 Store → 7 Update
            t(3, Guard::always(), 4),
            t(4, Guard::always(), 5),
            t(5, Guard::when(3, true), 6),
            t(6, Guard::always(), 7),
            t(7, Guard::when(10, true), 8), // i == pop → GenCheck
            t(7, Guard::always(), 3),
            // 8 GenCheck
            t(8, Guard::when(11, true), 22), // → Done
            t(8, Guard::always(), 9),        // → ElitWrite
            // 9 ElitWrite → 10 SelDraw
            t(9, Guard::always(), 10),
            // 10 SelDraw → 11 SelMulWait
            t(10, Guard::always(), 11),
            // 11 SelMulWait
            t(11, Guard::when(12, true), 12),
            // 12 SelScanAddr → 13 SelScanWait → 14 SelScanData
            t(12, Guard::always(), 13),
            t(13, Guard::always(), 14),
            t(14, Guard(vec![(5, true), (6, false)]), 10), // parent1 done → SelDraw
            t(14, Guard(vec![(5, true), (6, true)]), 15),  // parent2 done → XoverDecide
            t(14, Guard::always(), 12),                    // keep scanning
            // 15 XoverDecide → 16 MutDecide
            t(15, Guard::always(), 16),
            // 16 MutDecide → 17 OffFitReq
            t(16, Guard::always(), 17),
            // 17 OffFitReq → 18 OffFitWait → 19 OffStore → 20 OffUpdate
            t(17, Guard::always(), 18),
            t(18, Guard::when(3, true), 19),
            t(19, Guard::always(), 20),
            t(20, Guard::when(8, true), 21),  // idx == pop → GenEnd
            t(20, Guard::when(7, false), 16), // second offspring → MutDecide
            t(20, Guard::always(), 10),       // next pair → SelDraw
            // 21 GenEnd
            t(21, Guard::always(), 8),
            // 22 Done
            t(22, Guard::when(0, true), 2),
        ],
        state_names: [
            "Idle",
            "InitParams",
            "Start",
            "InitPopDraw",
            "FitReq",
            "FitWait",
            "Store",
            "Update",
            "GenCheck",
            "ElitWrite",
            "SelDraw",
            "SelMulWait",
            "SelScanAddr",
            "SelScanWait",
            "SelScanData",
            "XoverDecide",
            "MutDecide",
            "OffFitReq",
            "OffFitWait",
            "OffStore",
            "OffUpdate",
            "GenEnd",
            "Done",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect(),
    }
}

/// Named register-bank layout of the elaborated GA core, in scan-chain
/// order: `(field, first register index, width)`. The indices mirror
/// the `reg_bank` creation order in [`try_elaborate_ga_core`] — the
/// optimizer preserves register order, so they are stable through the
/// shipping netlist. Field names match the cycle-accurate model's
/// scan-chain serialization (`ga_core::hwcore`) where a counterpart
/// exists; note that the hardware accumulators (`fit_sum`, `new_sum`,
/// `threshold`, `cum`) are 32-bit there but 24-bit here, and `best` /
/// `new_best` pack `{chrom[16..32], fitness[0..16]}`.
pub const GA_CORE_REG_LAYOUT: &[(&str, usize, usize)] = &[
    ("rng", 0, 16),
    ("seed", 16, 16),
    ("pop_size", 32, 8),
    ("n_gens", 40, 32),
    ("xover_threshold", 72, 4),
    ("mut_threshold", 76, 4),
    ("cand", 80, 16),
    ("fit_reg", 96, 16),
    ("parent1", 112, 16),
    ("parent2", 128, 16),
    ("off1", 144, 16),
    ("off2", 160, 16),
    ("best", 176, 32),
    ("new_best", 208, 32),
    ("fit_sum", 240, 24),
    ("new_sum", 264, 24),
    ("threshold", 288, 24),
    ("cum", 312, 24),
    ("i", 336, 8),
    ("idx", 344, 8),
    ("scan_idx", 352, 8),
    ("gen", 360, 32),
    ("multcnt", 392, 4),
    ("mem_addr", 396, 8),
    ("mem_data", 404, 32),
    ("flags", 436, 8),
    ("fsm", 444, 23),
];

/// Look up a named field of [`GA_CORE_REG_LAYOUT`].
pub fn ga_core_reg_field(name: &str) -> Option<(usize, usize)> {
    GA_CORE_REG_LAYOUT
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(_, start, width)| (start, width))
}

/// Elaborate the CA RNG module alone: 16 hybrid rule-90/150 cells with
/// seed-load and consume-enable inputs. Used for gate-level functional
/// equivalence testing against the `carng` reference (the one subsystem
/// small enough to verify exhaustively at the gate level).
pub fn try_elaborate_ca_rng() -> Result<Netlist, SynthError> {
    let mut b = Builder::new();
    let seed = b.input("seed", 16);
    let ctl = b.input("ctl", 2); // [0] = seed_load, [1] = consume
    let zeros: Vec<NetId> = (0..16).map(|_| b.const0()).collect();
    let q = b.reg_bank(&zeros);
    let mut next: Vec<NetId> = Vec::with_capacity(16);
    for i in 0..16 {
        let left = if i + 1 < 16 { q[i + 1] } else { b.const0() };
        let right = if i > 0 { q[i - 1] } else { b.const0() };
        let lr = b.xor(left, right);
        next.push(if (0x055Fu16 >> i) & 1 == 1 {
            b.xor(lr, q[i])
        } else {
            lr
        });
    }
    // Hold / step / load priority: load > consume > hold.
    let stepped = b.mux2_bus(ctl[1], &next, &q)?;
    let d = b.mux2_bus(ctl[0], &seed, &stepped)?;
    b.patch_reg_d(&q, &d)?;
    b.output("rn", &q);
    Ok(b.finish())
}

/// Infallible wrapper over [`try_elaborate_ca_rng`] (the elaboration is
/// statically known-good; covered by tests and `galint`).
pub fn elaborate_ca_rng() -> Netlist {
    try_elaborate_ca_rng().expect("CA RNG elaboration is known-good")
}

/// Elaborate the GA core + RNG into a netlist and produce the report.
pub fn try_elaborate_ga_core() -> Result<(Netlist, GaCoreReport), SynthError> {
    let mut b = Builder::new();

    // ---- primary inputs ---------------------------------------------
    let rn_ext = b.input("rn_ext", 16); // external RNG path (unused when internal CA selected)
    let fit_value = b.input("fit_value", 16);
    let mem_data_in = b.input("mem_data_in", 32);
    let value_bus = b.input("value", 16);
    let ctl = b.input("ctl", 6); // start, ga_load, data_valid, fit_valid, test, scanin
    let preset = b.input("preset", 2);
    let index = b.input("index", 3);

    // ---- the CA RNG module ------------------------------------------
    // 16 cells, rule 90/150 hybrid: next = (left ^ right) ^ (self & rule).
    let rng_zero: Vec<NetId> = (0..16).map(|_| b.const0()).collect();
    let rng_q = b.reg_bank(&rng_zero);
    let mut rng_d: Vec<NetId> = Vec::with_capacity(16);
    for i in 0..16 {
        let left = if i + 1 < 16 { rng_q[i + 1] } else { b.const0() };
        let right = if i > 0 { rng_q[i - 1] } else { b.const0() };
        let lr = b.xor(left, right);
        // Rule vector 0x055F: cells with bit set apply rule 150.
        let d = if (0x055Fu16 >> i) & 1 == 1 {
            b.xor(lr, rng_q[i])
        } else {
            lr
        };
        rng_d.push(d);
    }
    // Seed-load mux folded into the RNG D path.
    let seed_load = ctl[0]; // reuse start as the load strobe
    let rng_d_final = b.mux2_bus(seed_load, &value_bus.clone(), &rng_d)?;
    b.patch_reg_d(&rng_q, &rng_d_final)?;
    let rn = rng_q.clone();
    let _ = rn_ext;

    // ---- parameter + datapath registers ------------------------------
    let zero16: Vec<NetId> = (0..16).map(|_| b.const0()).collect();
    let zero32: Vec<NetId> = (0..32).map(|_| b.const0()).collect();
    let zero24: Vec<NetId> = (0..24).map(|_| b.const0()).collect();
    let zero8: Vec<NetId> = (0..8).map(|_| b.const0()).collect();
    let zero4: Vec<NetId> = (0..4).map(|_| b.const0()).collect();

    let seed_q = b.reg_bank(&zero16);
    let pop_q = b.reg_bank(&zero8);
    let ngens_q = b.reg_bank(&zero32);
    let xt_q = b.reg_bank(&zero4);
    let mt_q = b.reg_bank(&zero4);
    let cand_q = b.reg_bank(&zero16);
    let fit_q = b.reg_bank(&zero16);
    let p1_q = b.reg_bank(&zero16);
    let p2_q = b.reg_bank(&zero16);
    let off1_q = b.reg_bank(&zero16);
    let off2_q = b.reg_bank(&zero16);
    let best_q = b.reg_bank(&zero32); // {chrom, fitness}
    let nbest_q = b.reg_bank(&zero32);
    let fitsum_q = b.reg_bank(&zero24);
    let newsum_q = b.reg_bank(&zero24);
    let thr_reg_start = b.reg_count();
    let thr_q = b.reg_bank(&zero24);
    let cum_q = b.reg_bank(&zero24);
    let i_q = b.reg_bank(&zero8);
    let idx_q = b.reg_bank(&zero8);
    let scanidx_q = b.reg_bank(&zero8);
    let gen_q = b.reg_bank(&zero32);
    let multcnt_q = b.reg_bank(&zero4);
    let mema_q = b.reg_bank(&zero8);
    let memd_q = b.reg_bank(&zero32);
    let flags_zero: Vec<NetId> = (0..8).map(|_| b.const0()).collect();
    // memwr, fitreq, gadone, ack, selph, offph, testprev, scanout
    let flags_q = b.reg_bank(&flags_zero);

    // ---- datapath ----------------------------------------------------
    // Selection threshold: (fit_sum × rn) >> 16, 24×16 multiplier.
    let product = b.multiplier(&fitsum_q, &rn)?;
    let thr_d: Vec<NetId> = product[16..40].to_vec();

    // Memory word split.
    let mem_fit: Vec<NetId> = mem_data_in[0..16].to_vec();
    let mem_chrom: Vec<NetId> = mem_data_in[16..32].to_vec();
    let mem_fit24 = zext(&mut b, &mem_fit, 24);

    // Accumulators.
    let zero = b.const0();
    let (cum_next, _) = b.adder(&cum_q, &mem_fit24, zero)?;
    let fit24 = zext(&mut b, &fit_q, 24);
    let (sum_next, _) = b.adder(&fitsum_q, &fit24, zero)?;
    let (newsum_next, _) = b.adder(&newsum_q, &fit24, zero)?;

    // Comparators.
    let cum_gt_thr = b.gt(&cum_next, &thr_q)?;
    let best_fit: Vec<NetId> = best_q[0..16].to_vec();
    let nbest_fit: Vec<NetId> = nbest_q[0..16].to_vec();
    let fit_gt_best = b.gt(&fit_q, &best_fit)?;
    let fit_gt_nbest = b.gt(&fit_q, &nbest_fit)?;
    let rn_dec: Vec<NetId> = rn[0..4].to_vec();
    let dec_x = b.lt(&rn_dec, &xt_q)?;
    let dec_m = b.lt(&rn_dec, &mt_q)?;
    let gen_eq = b.eq(&gen_q, &ngens_q)?;
    let pop16 = pop_q.clone();
    let idx_eq_pop = b.eq(&idx_q, &pop16)?;
    let i_eq_pop = b.eq(&i_q, &pop16)?;
    let scan_inc = b.incrementer(&scanidx_q)?;
    let scan_last = b.eq(&scan_inc, &pop16)?;
    let scan_hit = b.or(cum_gt_thr, scan_last);
    let multcnt_zero = {
        let z = b.const0();
        let zeros = vec![z; 4];
        b.eq(&multcnt_q, &zeros)?
    };

    // Crossover + mutation networks.
    let cut: Vec<NetId> = rn[4..8].to_vec();
    let (xo1, xo2) = b.crossover16(&p1_q, &p2_q, &cut)?;
    let off1_sel = b.mux2_bus(dec_x, &xo1, &p1_q)?;
    let off2_sel = b.mux2_bus(dec_x, &xo2, &p2_q)?;
    let mpoint: Vec<NetId> = rn[8..12].to_vec();
    let off_phase = flags_q[5];
    let off_cur = b.mux2_bus(off_phase, &off2_q, &off1_q)?;
    let mutated = b.mutate16(&off_cur, &mpoint)?;
    let off_after_mut = b.mux2_bus(dec_m, &mutated, &off_cur)?;

    // Counters.
    let i_inc = b.incrementer(&i_q)?;
    let idx_inc = b.incrementer(&idx_q)?;
    let gen_inc = b.incrementer(&gen_q)?;

    // ---- controller ---------------------------------------------------
    let spec = ga_controller_spec();
    let sel_phase = flags_q[4];
    let conds: Vec<NetId> = vec![
        ctl[0],       // 0 start
        ctl[1],       // 1 ga_load
        ctl[2],       // 2 data_valid
        ctl[3],       // 3 fit_valid
        b.const0(),   // 4 (reserved)
        scan_hit,     // 5
        sel_phase,    // 6
        off_phase,    // 7
        idx_eq_pop,   // 8
        b.const0(),   // 9 (reserved)
        i_eq_pop,     // 10
        gen_eq,       // 11
        multcnt_zero, // 12
        ctl[4],       // 13 test
    ];
    let fsm = spec.synthesize(&mut b, &conds)?;
    let st = &fsm.state_q;

    // ---- register D-input mux trees ------------------------------------
    // Parameter registers: written in InitParams (decoded index) and by
    // the preset path in Start.
    let idx_dec = b.decoder(&index)?; // 8 outputs
    let wr_en: Vec<NetId> = idx_dec
        .iter()
        .map(|&d| {
            let in_init = b.and(st[1], ctl[2]);
            b.and(in_init, d)
        })
        .collect();
    let preset_hot = b.or(preset[0], preset[1]);
    let preset_load = b.and(st[2], preset_hot);

    let seed_d = mux_word(&mut b, &seed_q, &[(wr_en[5], value_bus.clone())])?;
    b.patch_reg_d(&seed_q, &seed_d)?;
    let pop_src: Vec<NetId> = value_bus[0..8].to_vec();
    // Preset population constant (the Table IV ROM; 32 = mode 01 shown,
    // the full constant mux costs the same gates per mode).
    let preset_pop: Vec<NetId> = {
        let one = b.const1();
        let mut v = vec![zero_bit(&mut b); 8];
        v[5] = one; // 32
        v
    };
    let pop_d = mux_word(
        &mut b,
        &pop_q,
        &[(wr_en[2], pop_src), (preset_load, preset_pop)],
    )?;
    b.patch_reg_d(&pop_q, &pop_d)?;
    let ng_lo = mux_word(&mut b, &ngens_q[0..16], &[(wr_en[0], value_bus.clone())])?;
    let ng_hi = mux_word(&mut b, &ngens_q[16..32], &[(wr_en[1], value_bus.clone())])?;
    let ng_d: Vec<NetId> = ng_lo.into_iter().chain(ng_hi).collect();
    b.patch_reg_d(&ngens_q, &ng_d)?;
    let xt_src: Vec<NetId> = value_bus[0..4].to_vec();
    let xt_d = mux_word(&mut b, &xt_q, &[(wr_en[3], xt_src)])?;
    b.patch_reg_d(&xt_q, &xt_d)?;
    let mt_src: Vec<NetId> = value_bus[0..4].to_vec();
    let mt_d = mux_word(&mut b, &mt_q, &[(wr_en[4], mt_src)])?;
    b.patch_reg_d(&mt_q, &mt_d)?;

    // Candidate register: ← rn (InitPopDraw), ← offspring (OffFitReq),
    // ← best chromosome (GenEnd / Done).
    let best_chrom: Vec<NetId> = best_q[16..32].to_vec();
    let nbest_chrom: Vec<NetId> = nbest_q[16..32].to_vec();
    let cand_d = mux_word(
        &mut b,
        &cand_q,
        &[
            (st[3], rn.clone()),
            (st[17], off_after_mut.clone()),
            (st[8], best_chrom.clone()),
            (st[21], nbest_chrom.clone()),
            (st[22], best_chrom.clone()),
        ],
    )?;
    b.patch_reg_d(&cand_q, &cand_d)?;

    // Fitness capture register.
    let fit_d = mux_word(&mut b, &fit_q, &[(ctl[3], fit_value.clone())])?;
    b.patch_reg_d(&fit_q, &fit_d)?;

    // Parents and offspring.
    let sel_p1 = {
        let ns = b.not(sel_phase);
        let hit = b.and(st[14], scan_hit);
        b.and(hit, ns)
    };
    let sel_p2 = {
        let hit = b.and(st[14], scan_hit);
        b.and(hit, sel_phase)
    };
    let p1_d = mux_word(&mut b, &p1_q, &[(sel_p1, mem_chrom.to_vec())])?;
    b.patch_reg_d(&p1_q, &p1_d)?;
    let p2_d = mux_word(&mut b, &p2_q, &[(sel_p2, mem_chrom.to_vec())])?;
    b.patch_reg_d(&p2_q, &p2_d)?;
    let off1_d = mux_word(
        &mut b,
        &off1_q,
        &[(st[15], off1_sel), (st[16], off_after_mut.clone())],
    )?;
    b.patch_reg_d(&off1_q, &off1_d)?;
    let off2_d = mux_word(
        &mut b,
        &off2_q,
        &[(st[15], off2_sel), (st[16], off_after_mut.clone())],
    )?;
    b.patch_reg_d(&off2_q, &off2_d)?;

    // Best registers.
    let cand_fit: Vec<NetId> = fit_q.iter().chain(cand_q.iter()).copied().collect();
    let upd_best = b.and(st[7], fit_gt_best);
    let best_d = mux_word(
        &mut b,
        &best_q,
        &[(upd_best, cand_fit.clone()), (st[21], nbest_q.clone())],
    )?;
    b.patch_reg_d(&best_q, &best_d)?;
    let upd_nbest = b.and(st[20], fit_gt_nbest);
    let nbest_d = mux_word(
        &mut b,
        &nbest_q,
        &[(upd_nbest, cand_fit), (st[9], best_q.clone())],
    )?;
    b.patch_reg_d(&nbest_q, &nbest_d)?;

    // Sums, threshold, cumulative.
    let fitsum_d = mux_word(
        &mut b,
        &fitsum_q,
        &[(st[7], sum_next), (st[21], newsum_q.clone())],
    )?;
    b.patch_reg_d(&fitsum_q, &fitsum_d)?;
    let elite_fit24 = zext(&mut b, &best_fit, 24);
    let newsum_d = mux_word(
        &mut b,
        &newsum_q,
        &[(st[19], newsum_next), (st[9], elite_fit24)],
    )?;
    b.patch_reg_d(&newsum_q, &newsum_d)?;
    let thr_d_mux = mux_word(&mut b, &thr_q, &[(st[10], thr_d)])?;
    b.patch_reg_d(&thr_q, &thr_d_mux)?;
    let cum_zero = vec![zero; 24];
    let cum_d = mux_word(&mut b, &cum_q, &[(st[10], cum_zero), (st[14], cum_next)])?;
    b.patch_reg_d(&cum_q, &cum_d)?;

    // Counters.
    let zero8v = vec![zero; 8];
    let i_d = mux_word(&mut b, &i_q, &[(st[2], zero8v.clone()), (st[7], i_inc)])?;
    b.patch_reg_d(&i_q, &i_d)?;
    let one8: Vec<NetId> = {
        let one = b.const1();
        let mut v = vec![one];
        v.extend(vec![zero; 7]);
        v
    };
    let idx_d = mux_word(&mut b, &idx_q, &[(st[9], one8), (st[20], idx_inc)])?;
    b.patch_reg_d(&idx_q, &idx_d)?;
    let scan_d = mux_word(
        &mut b,
        &scanidx_q,
        &[(st[10], zero8v.clone()), (st[14], scan_inc)],
    )?;
    b.patch_reg_d(&scanidx_q, &scan_d)?;
    let zero32v = vec![zero; 32];
    let gen_d = mux_word(&mut b, &gen_q, &[(st[2], zero32v), (st[21], gen_inc)])?;
    b.patch_reg_d(&gen_q, &gen_d)?;
    let three4: Vec<NetId> = {
        let one = b.const1();
        vec![one, one, zero, zero]
    };
    let multcnt_dec: Vec<NetId> = {
        // 4-bit decrementer: subtract 1.
        let one = b.const1();
        let ones = vec![one; 4];
        b.adder(&multcnt_q, &ones, zero)?.0
    };
    let multcnt_d = mux_word(
        &mut b,
        &multcnt_q,
        &[(st[10], three4), (st[11], multcnt_dec)],
    )?;
    b.patch_reg_d(&multcnt_q, &multcnt_d)?;

    // Memory interface.
    let addr_cur = {
        let base = [flags_q[6]; 1]; // bank bit stand-in
        let mut a = scanidx_q[0..7].to_vec();
        a.push(base[0]);
        a
    };
    let addr_new = {
        let mut a = idx_q[0..7].to_vec();
        let nb = b.not(flags_q[6]);
        a.push(nb);
        a
    };
    let addr_i = {
        let mut a = i_q[0..7].to_vec();
        a.push(flags_q[6]);
        a
    };
    let mema_d = mux_word(
        &mut b,
        &mema_q,
        &[
            (st[12], addr_cur),
            (st[19], addr_new.clone()),
            (st[9], addr_new),
            (st[6], addr_i),
        ],
    )?;
    b.patch_reg_d(&mema_q, &mema_d)?;
    let store_word: Vec<NetId> = fit_q.iter().chain(cand_q.iter()).copied().collect();
    let memd_d = mux_word(
        &mut b,
        &memd_q,
        &[
            (st[6], store_word.clone()),
            (st[19], store_word),
            (st[9], best_q.clone()),
        ],
    )?;
    b.patch_reg_d(&memd_q, &memd_d)?;

    // Flag registers (memwr, fitreq, gadone, ack, selph, offph, bank, scanout).
    let memwr_d = {
        let w1 = b.or(st[6], st[19]);
        b.or(w1, st[9])
    };
    let fitreq_set = b.or(st[4], st[17]);
    let fitreq_clr = ctl[3];
    let nclr = b.not(fitreq_clr);
    let fitreq_hold = b.and(flags_q[1], nclr);
    let fitreq_d = b.or(fitreq_set, fitreq_hold);
    let gadone_d = st[22];
    let ack_d = b.and(st[1], ctl[2]);
    let selph_toggle = b.xor(sel_phase, sel_p1);
    let offph_hold = b.and(off_phase, st[20]);
    let bank_toggle = b.xor(flags_q[6], st[21]);
    let scanout_d = ctl[5];
    let flags_d = vec![
        memwr_d,
        fitreq_d,
        gadone_d,
        ack_d,
        selph_toggle,
        offph_hold,
        bank_toggle,
        scanout_d,
    ];
    b.patch_reg_d(&flags_q, &flags_d)?;

    // ---- primary outputs ----------------------------------------------
    b.output("candidate", &cand_q);
    b.output("mem_address", &mema_q);
    b.output("mem_data_out", &memd_q);
    b.output("mem_wr", &[flags_q[0]]);
    b.output("fit_request", &[flags_q[1]]);
    b.output("ga_done", &[flags_q[2]]);
    b.output("data_ack", &[flags_q[3]]);
    b.output("scanout", &[flags_q[7]]);

    let raw = b.finish();
    raw.validate()?;
    // Logic optimization (the SIS step): constant folding + dead-gate
    // sweep before mapping — the elaboration's zero-extensions and
    // constant mux legs fold away here. Register order is preserved, so
    // the multicycle constraint re-attaches to the threshold registers
    // by scan-chain position.
    let (nl, _opt_report) = crate::opt::optimize(&raw)?;
    // The multiplier feeding the threshold register gets the four clock
    // cycles the controller budgets for it (SelDraw + 3 × SelMulWait).
    let multicycle: Vec<(NetId, u32)> = nl.regs[thr_reg_start..thr_reg_start + 24]
        .iter()
        .map(|r| (r.d, 4))
        .collect();

    let map = map_to_lut4(&nl);
    let timing = crate::timing::analyze_mapped(&nl, &DelayModel::default(), &multicycle);
    let slices = Xc2vp30::slices_for(&map, 0.75);
    let report = GaCoreReport {
        slices,
        slice_pct: Xc2vp30::slice_utilization_pct(slices),
        gates: nl.gate_count(),
        scan_ffs: nl.ff_count(),
        map,
        timing,
    };
    Ok((nl, report))
}

/// Infallible wrapper over [`try_elaborate_ga_core`] (the elaboration is
/// statically known-good; covered by tests and `galint`).
pub fn elaborate_ga_core() -> (Netlist, GaCoreReport) {
    try_elaborate_ga_core().expect("GA core elaboration is known-good")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elaboration_validates_and_is_nontrivial() {
        let (nl, report) = elaborate_ga_core();
        assert!(nl.validate().is_ok());
        assert!(report.gates > 3000, "gates = {}", report.gates);
        assert!(report.map.lut4 > 1000, "lut4 = {}", report.map.lut4);
        assert!(report.scan_ffs > 400, "ffs = {}", report.scan_ffs);
    }

    #[test]
    fn slice_utilization_in_table_vi_band() {
        // Table VI reports 13% slice utilization; the structural model
        // must land in the same band (10–16%).
        let (_, report) = elaborate_ga_core();
        assert!(
            (8..=18).contains(&report.slice_pct),
            "slice utilization {}% out of band (slices = {})",
            report.slice_pct,
            report.slices
        );
    }

    #[test]
    fn meets_the_50mhz_clock() {
        let (_, report) = elaborate_ga_core();
        assert!(
            report.timing.fmax_mhz >= 50.0,
            "fmax {:.1} MHz below the paper's 50 MHz",
            report.timing.fmax_mhz
        );
    }

    #[test]
    fn every_ff_is_on_the_scan_chain() {
        let (nl, _) = elaborate_ga_core();
        // All registers are scan registers by construction; the chain
        // order covers each exactly once.
        let mut seen = std::collections::HashSet::new();
        for r in &nl.regs {
            assert!(seen.insert(r.q), "duplicate scan element");
        }
        assert_eq!(seen.len(), nl.ff_count());
    }

    #[test]
    fn reg_layout_is_contiguous_and_covers_every_ff() {
        let mut expect = 0usize;
        for &(name, start, width) in GA_CORE_REG_LAYOUT {
            assert_eq!(start, expect, "field '{name}' not contiguous");
            assert!(width > 0);
            expect = start + width;
        }
        let (nl, _) = elaborate_ga_core();
        assert_eq!(expect, nl.ff_count(), "layout must cover the scan chain");
        assert_eq!(ga_core_reg_field("seed"), Some((16, 16)));
        assert_eq!(ga_core_reg_field("fsm"), Some((444, 23)));
        assert_eq!(ga_core_reg_field("nope"), None);
    }

    #[test]
    fn reg_layout_spot_checks_against_the_structure() {
        // The fsm field must cover exactly the 23 one-hot state FFs and
        // sit at the end of the chain; the rng field heads it.
        let spec = ga_controller_spec();
        let (fsm_start, fsm_width) = ga_core_reg_field("fsm").expect("fsm field exists");
        assert_eq!(fsm_width, spec.n_states);
        let (nl, _) = elaborate_ga_core();
        assert_eq!(fsm_start + fsm_width, nl.ff_count());
        let (rng_start, rng_width) = ga_core_reg_field("rng").expect("rng field exists");
        assert_eq!((rng_start, rng_width), (0, 16));
    }

    #[test]
    fn controller_spec_names_every_state() {
        let spec = ga_controller_spec();
        assert_eq!(spec.state_names.len(), spec.n_states);
        assert_eq!(spec.state_name(0), "Idle");
        assert_eq!(spec.state_name(22), "Done");
    }
}
