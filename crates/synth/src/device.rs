//! Device model for the paper's FPGA: Xilinx Virtex-II Pro
//! xc2vp30-7ff896.
//!
//! Resource totals from the Virtex-II Pro data sheet: 13 696 slices
//! (each with two 4-input LUTs and two flip-flops plus the dedicated
//! carry chain), 136 RAMB16 block RAMs, and two embedded PowerPC 405
//! cores (one of which runs the software baseline of §IV-C).

use crate::mapper::MapReport;

/// The xc2vp30 resource totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xc2vp30;

impl Xc2vp30 {
    /// Total slices.
    pub const SLICES: u32 = 13_696;
    /// LUT4s per slice.
    pub const LUTS_PER_SLICE: u32 = 2;
    /// Flip-flops per slice.
    pub const FFS_PER_SLICE: u32 = 2;
    /// RAMB16 block RAMs.
    pub const BRAMS: u32 = 136;
    /// Embedded PowerPC 405 cores.
    pub const PPC405: u32 = 2;

    /// Slices occupied by a mapped design. Packing is imperfect in
    /// practice: the Xilinx packer co-locates a LUT and an unrelated FF
    /// only when control sets match, so a packing efficiency factor
    /// (< 1.0) inflates the ideal count; 0.75 matches the typical
    /// post-PAR slice report for control-heavy designs like this one.
    pub fn slices_for(map: &MapReport, packing_efficiency: f64) -> u32 {
        assert!(packing_efficiency > 0.0 && packing_efficiency <= 1.0);
        let lut_slices = map.lut4 as f64 / Self::LUTS_PER_SLICE as f64;
        let ff_slices = map.ff as f64 / Self::FFS_PER_SLICE as f64;
        // Carry muxes ride along with their slice's LUTs (one MUXCY per
        // LUT position) and only add slices if the carry chain is longer
        // than the LUT demand, which never happens here.
        (lut_slices.max(ff_slices) / packing_efficiency).ceil() as u32
    }

    /// Percent of the device's slices, rounded to nearest.
    pub fn slice_utilization_pct(slices: u32) -> u32 {
        ((slices as f64 / Self::SLICES as f64) * 100.0).round() as u32
    }

    /// Percent of the device's block RAMs, rounded to nearest (with a
    /// floor of 1% for any nonzero usage, as ISE reports).
    pub fn bram_utilization_pct(brams: u32) -> u32 {
        if brams == 0 {
            return 0;
        }
        (((brams as f64 / Self::BRAMS as f64) * 100.0).round() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_math() {
        let map = MapReport {
            lut4: 2000,
            carry_mux: 100,
            ff: 500,
            gates_mapped: 4000,
        };
        // LUT-bound: 1000 ideal slices / 0.75 = 1334.
        assert_eq!(Xc2vp30::slices_for(&map, 0.75), 1334);
        // FF-bound case.
        let map2 = MapReport {
            lut4: 100,
            carry_mux: 0,
            ff: 4000,
            gates_mapped: 200,
        };
        assert_eq!(Xc2vp30::slices_for(&map2, 1.0), 2000);
    }

    #[test]
    fn utilization_rounds_like_ise() {
        assert_eq!(Xc2vp30::slice_utilization_pct(1780), 13);
        assert_eq!(Xc2vp30::bram_utilization_pct(64), 47);
        assert_eq!(Xc2vp30::bram_utilization_pct(1), 1);
        assert_eq!(Xc2vp30::bram_utilization_pct(0), 0);
    }

    #[test]
    fn device_totals_match_datasheet() {
        assert_eq!(Xc2vp30::SLICES, 13_696);
        assert_eq!(Xc2vp30::BRAMS, 136);
        assert_eq!(Xc2vp30::PPC405, 2);
    }
}
