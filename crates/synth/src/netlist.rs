//! The gate-level intermediate representation.
//!
//! A [`Netlist`] is a flat array of gates; each gate defines exactly one
//! output net, so gate index and [`NetId`] coincide. Sequential elements
//! are scan registers ([`Netlist::regs`]): their Q pins appear as
//! [`GateKind::RegQ`] gates (combinational sources) and their D pins are
//! arbitrary nets — levelization and combinational simulation treat the
//! register boundary exactly like an input/output boundary, as static
//! timing requires.
//!
//! The gate alphabet matches the paper's gate-level Verilog ("simple
//! Boolean gates such as NAND, NOR, AND, OR, XOR, and SCAN_REGISTER")
//! plus the Virtex dedicated carry multiplexer, which the technology
//! mapper and the timing engine treat specially (it maps to MUXCY, not
//! to a LUT).

use crate::error::SynthError;
use std::collections::HashMap;

/// Net identifier (also the defining gate's index).
pub type NetId = u32;

/// Gate primitive kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Constant zero.
    Const0,
    /// Constant one.
    Const1,
    /// Primary input bit.
    Input,
    /// Register Q output (sequential source).
    RegQ,
    /// Buffer.
    Buf,
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// Carry mux (MUXCY): inputs `[sel, a, b]`, output `sel ? a : b`.
    /// Maps to the dedicated carry chain, not a LUT.
    CarryMux,
}

impl GateKind {
    /// Number of input pins.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Const0 | GateKind::Const1 | GateKind::Input | GateKind::RegQ => 0,
            GateKind::Buf | GateKind::Inv => 1,
            GateKind::And2 | GateKind::Or2 | GateKind::Xor2 | GateKind::Nand2 | GateKind::Nor2 => 2,
            GateKind::CarryMux => 3,
        }
    }

    /// True for zero-arity combinational sources.
    pub fn is_source(self) -> bool {
        self.arity() == 0
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Primitive kind.
    pub kind: GateKind,
    /// Input nets (length = `kind.arity()`).
    pub inputs: Vec<NetId>,
}

/// A scan register cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegCell {
    /// D input net.
    pub d: NetId,
    /// Q output net (a `RegQ` gate).
    pub q: NetId,
}

/// A flat gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// All gates; index = output [`NetId`].
    pub gates: Vec<Gate>,
    /// Named primary input buses (name → bit nets, LSB first).
    pub inputs: Vec<(String, Vec<NetId>)>,
    /// Named primary output buses.
    pub outputs: Vec<(String, Vec<NetId>)>,
    /// Scan registers, in scan-chain order.
    pub regs: Vec<RegCell>,
}

impl Netlist {
    /// Number of gates (including sources).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Count of gates of a given kind.
    pub fn count_kind(&self, kind: GateKind) -> usize {
        self.gates.iter().filter(|g| g.kind == kind).count()
    }

    /// Combinational logic gates (excluding sources and buffers).
    pub fn logic_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !g.kind.is_source() && g.kind != GateKind::Buf)
            .count()
    }

    /// Flip-flop count.
    pub fn ff_count(&self) -> usize {
        self.regs.len()
    }

    /// Per-net fanout lists over combinational edges (gate input pins).
    /// Shared by validation, the optimizer, and the `galint` rules.
    pub fn fanout(&self) -> Vec<Vec<NetId>> {
        let mut fanout: Vec<Vec<NetId>> = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                fanout[inp as usize].push(i as NetId);
            }
        }
        fanout
    }

    /// Kahn topological sort over combinational edges. `None` if the
    /// gate graph has a cycle (use [`Netlist::comb_sccs`] to find it).
    pub fn topo_order(&self) -> Option<Vec<NetId>> {
        let n = self.gates.len();
        let mut indeg = vec![0u32; n];
        let fanout = self.fanout();
        for (i, g) in self.gates.iter().enumerate() {
            indeg[i] = g.inputs.len() as u32;
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(g) = queue.pop() {
            order.push(g);
            for &f in &fanout[g as usize] {
                indeg[f as usize] -= 1;
                if indeg[f as usize] == 0 {
                    queue.push(f);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Tarjan's strongly connected components over the combinational
    /// gate graph, returning only the *nontrivial* SCCs (more than one
    /// gate, or a gate feeding itself) — i.e. the combinational loops.
    /// This is the same analysis `Netlist::validate` and the `galint`
    /// `comb-loop` rule share; an empty result means the logic is
    /// acyclic. Iterative so deep carry chains can't overflow the stack.
    pub fn comb_sccs(&self) -> Vec<Vec<NetId>> {
        let n = self.gates.len();
        let fanout = self.fanout();
        const UNSET: u32 = u32::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs: Vec<Vec<NetId>> = Vec::new();
        // Explicit DFS: (node, next-successor-position).
        let mut call: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNSET {
                continue;
            }
            call.push((root, 0));
            while let Some((v, pos)) = call.last().copied() {
                let vu = v as usize;
                if pos == 0 {
                    index[vu] = next_index;
                    low[vu] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[vu] = true;
                }
                if let Some(&w) = fanout[vu].get(pos) {
                    if let Some(frame) = call.last_mut() {
                        frame.1 += 1;
                    }
                    let wu = w as usize;
                    if index[wu] == UNSET {
                        call.push((w, 0));
                    } else if on_stack[wu] {
                        low[vu] = low[vu].min(index[wu]);
                    }
                } else {
                    // Done with v: close the SCC if v is a root.
                    if low[vu] == index[vu] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let self_loop = comp.len() == 1 && self.gates[vu].inputs.contains(&v);
                        if comp.len() > 1 || self_loop {
                            comp.sort_unstable();
                            sccs.push(comp);
                        }
                    }
                    call.pop();
                    if let Some(&(p, _)) = call.last() {
                        let pu = p as usize;
                        low[pu] = low[pu].min(low[vu]);
                    }
                }
            }
        }
        sccs
    }

    /// Structural validation: arities match, input nets exist, every
    /// RegQ belongs to exactly one register, combinational logic is
    /// acyclic. Returns the topological order of all nets on success.
    ///
    /// This is the fast-path structural gate the rest of the crate
    /// relies on; the `galint` crate runs the same underlying analyses
    /// ([`Netlist::comb_sccs`], [`Netlist::fanout`]) as individually
    /// reportable design rules with richer diagnostics.
    pub fn validate(&self) -> Result<Vec<NetId>, SynthError> {
        let n = self.gates.len();
        for (i, g) in self.gates.iter().enumerate() {
            if g.inputs.len() != g.kind.arity() {
                return Err(SynthError::BadArity {
                    gate: i,
                    kind: format!("{:?}", g.kind),
                    got: g.inputs.len(),
                    want: g.kind.arity(),
                });
            }
            for &inp in &g.inputs {
                if inp as usize >= n {
                    return Err(SynthError::MissingNet { gate: i, net: inp });
                }
            }
        }
        let mut regq_owner: HashMap<NetId, usize> = HashMap::new();
        for (ri, r) in self.regs.iter().enumerate() {
            if r.q as usize >= n || r.d as usize >= n {
                return Err(SynthError::RegisterMissingNets { reg: ri });
            }
            if self.gates[r.q as usize].kind != GateKind::RegQ {
                return Err(SynthError::NotARegQ { reg: ri });
            }
            if regq_owner.insert(r.q, ri).is_some() {
                return Err(SynthError::DuplicateRegQ { q: r.q });
            }
        }
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind == GateKind::RegQ && !regq_owner.contains_key(&(i as NetId)) {
                return Err(SynthError::OrphanRegQ { gate: i });
            }
        }
        match self.topo_order() {
            Some(order) => Ok(order),
            None => {
                let trapped = self.comb_sccs().iter().map(Vec::len).sum();
                Err(SynthError::CombinationalCycle { trapped })
            }
        }
    }

    /// Evaluate the combinational network. `input_values` maps each
    /// `Input` net to a bit; `reg_values` maps each `RegQ` net. Returns
    /// the value of every net.
    ///
    /// Infallible wrapper over [`Netlist::try_eval_comb`]; panics on a
    /// structurally invalid netlist. Hot paths that evaluate the same
    /// netlist repeatedly should compile it once with
    /// [`crate::bitsim::CompiledNetlist`] instead — this interpreter
    /// re-validates (a full topological sort) on every call.
    pub fn eval_comb(
        &self,
        input_values: &HashMap<NetId, bool>,
        reg_values: &HashMap<NetId, bool>,
    ) -> Vec<bool> {
        self.try_eval_comb(input_values, reg_values)
            .expect("invalid netlist")
    }

    /// Fallible combinational evaluation: surfaces the structural
    /// defect as a [`SynthError`] instead of panicking.
    pub fn try_eval_comb(
        &self,
        input_values: &HashMap<NetId, bool>,
        reg_values: &HashMap<NetId, bool>,
    ) -> Result<Vec<bool>, SynthError> {
        let order = self.validate()?;
        Ok(self.eval_comb_with_order(&order, input_values, reg_values))
    }

    /// Combinational evaluation reusing an already-computed topological
    /// order (from [`Netlist::validate`] or [`Netlist::topo_order`]),
    /// skipping the per-call sort. The order must cover every gate of
    /// *this* netlist.
    pub fn eval_comb_with_order(
        &self,
        order: &[NetId],
        input_values: &HashMap<NetId, bool>,
        reg_values: &HashMap<NetId, bool>,
    ) -> Vec<bool> {
        let mut val = vec![false; self.gates.len()];
        for &id in order {
            let g = &self.gates[id as usize];
            let v = match g.kind {
                GateKind::Const0 => false,
                GateKind::Const1 => true,
                GateKind::Input => *input_values.get(&id).unwrap_or(&false),
                GateKind::RegQ => *reg_values.get(&id).unwrap_or(&false),
                GateKind::Buf => val[g.inputs[0] as usize],
                GateKind::Inv => !val[g.inputs[0] as usize],
                GateKind::And2 => val[g.inputs[0] as usize] & val[g.inputs[1] as usize],
                GateKind::Or2 => val[g.inputs[0] as usize] | val[g.inputs[1] as usize],
                GateKind::Xor2 => val[g.inputs[0] as usize] ^ val[g.inputs[1] as usize],
                GateKind::Nand2 => !(val[g.inputs[0] as usize] & val[g.inputs[1] as usize]),
                GateKind::Nor2 => !(val[g.inputs[0] as usize] | val[g.inputs[1] as usize]),
                GateKind::CarryMux => {
                    if val[g.inputs[0] as usize] {
                        val[g.inputs[1] as usize]
                    } else {
                        val[g.inputs[2] as usize]
                    }
                }
            };
            val[id as usize] = v;
        }
        val
    }

    /// One sequential step: evaluate combinationally, then latch every
    /// register (returns the new register state). Infallible wrapper
    /// over [`Netlist::try_step_seq`].
    pub fn step_seq(
        &self,
        input_values: &HashMap<NetId, bool>,
        reg_values: &HashMap<NetId, bool>,
    ) -> HashMap<NetId, bool> {
        self.try_step_seq(input_values, reg_values)
            .expect("invalid netlist")
    }

    /// Fallible sequential step, consistent with the crate's `try_*`
    /// convention.
    pub fn try_step_seq(
        &self,
        input_values: &HashMap<NetId, bool>,
        reg_values: &HashMap<NetId, bool>,
    ) -> Result<HashMap<NetId, bool>, SynthError> {
        let vals = self.try_eval_comb(input_values, reg_values)?;
        Ok(self
            .regs
            .iter()
            .map(|r| (r.q, vals[r.d as usize]))
            .collect())
    }

    /// Look up a named bus in inputs.
    pub fn input_bus(&self, name: &str) -> Option<&[NetId]> {
        self.inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Look up a named bus in outputs.
    pub fn output_bus(&self, name: &str) -> Option<&[NetId]> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }
}

/// Helpers to pack bit vectors into integers and back (LSB first).
pub fn bus_to_u64(nets: &[NetId], vals: &[bool]) -> u64 {
    let mut v = 0u64;
    for (i, &n) in nets.iter().enumerate() {
        if vals[n as usize] {
            v |= 1 << i;
        }
    }
    v
}

/// Spread an integer across a bus into an input-value map (LSB first).
pub fn u64_to_bus(nets: &[NetId], value: u64, map: &mut HashMap<NetId, bool>) {
    for (i, &n) in nets.iter().enumerate() {
        map.insert(n, (value >> i) & 1 == 1);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn xor_netlist() -> Netlist {
        // out = a ^ b built from NAND gates (the classic 4-NAND XOR).
        let mut nl = Netlist::default();
        let a = 0u32;
        let b = 1u32;
        nl.gates.push(Gate {
            kind: GateKind::Input,
            inputs: vec![],
        });
        nl.gates.push(Gate {
            kind: GateKind::Input,
            inputs: vec![],
        });
        nl.gates.push(Gate {
            kind: GateKind::Nand2,
            inputs: vec![a, b],
        }); // 2
        nl.gates.push(Gate {
            kind: GateKind::Nand2,
            inputs: vec![a, 2],
        }); // 3
        nl.gates.push(Gate {
            kind: GateKind::Nand2,
            inputs: vec![b, 2],
        }); // 4
        nl.gates.push(Gate {
            kind: GateKind::Nand2,
            inputs: vec![3, 4],
        }); // 5
        nl.inputs.push(("a".into(), vec![a]));
        nl.inputs.push(("b".into(), vec![b]));
        nl.outputs.push(("y".into(), vec![5]));
        nl
    }

    #[test]
    fn four_nand_xor_truth_table() {
        let nl = xor_netlist();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut inp = HashMap::new();
            inp.insert(0u32, a);
            inp.insert(1u32, b);
            let vals = nl.eval_comb(&inp, &HashMap::new());
            assert_eq!(vals[5], a ^ b, "a={a} b={b}");
        }
    }

    #[test]
    fn validation_rejects_cycles() {
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![1],
        });
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![0],
        });
        assert!(nl.validate().unwrap_err().to_string().contains("cycle"));
        assert_eq!(nl.comb_sccs().len(), 1);
    }

    #[test]
    fn try_eval_comb_surfaces_typed_errors() {
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![1],
        });
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![0],
        });
        let err = nl.try_eval_comb(&HashMap::new(), &HashMap::new());
        assert!(matches!(err, Err(SynthError::CombinationalCycle { .. })));
        assert!(matches!(
            nl.try_step_seq(&HashMap::new(), &HashMap::new()),
            Err(SynthError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn eval_comb_with_order_reuses_a_cached_sort() {
        let nl = xor_netlist();
        let order = nl.validate().unwrap();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut inp = HashMap::new();
            inp.insert(0u32, a);
            inp.insert(1u32, b);
            let vals = nl.eval_comb_with_order(&order, &inp, &HashMap::new());
            assert_eq!(vals[5], a ^ b, "a={a} b={b}");
        }
    }

    #[test]
    fn validation_rejects_bad_arity() {
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::And2,
            inputs: vec![0],
        });
        assert!(nl.validate().is_err());
    }

    #[test]
    fn validation_rejects_orphan_regq() {
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::RegQ,
            inputs: vec![],
        });
        assert!(nl.validate().unwrap_err().to_string().contains("orphan"));
    }

    #[test]
    fn sequential_step_latches_d() {
        // A 1-bit toggle: d = !q.
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::RegQ,
            inputs: vec![],
        }); // 0 = q
        nl.gates.push(Gate {
            kind: GateKind::Inv,
            inputs: vec![0],
        }); // 1 = d
        nl.regs.push(RegCell { d: 1, q: 0 });
        let mut state: HashMap<NetId, bool> = [(0u32, false)].into();
        for expected in [true, false, true, false] {
            state = nl.step_seq(&HashMap::new(), &state);
            assert_eq!(state[&0], expected);
        }
    }

    #[test]
    fn bus_packing_roundtrip() {
        let nets = vec![3u32, 1, 2];
        let mut map = HashMap::new();
        u64_to_bus(&nets, 0b101, &mut map);
        assert!(map[&3]);
        assert!(!map[&1]);
        assert!(map[&2]);
    }

    #[test]
    fn carry_mux_selects() {
        let mut nl = Netlist::default();
        for _ in 0..3 {
            nl.gates.push(Gate {
                kind: GateKind::Input,
                inputs: vec![],
            });
        }
        nl.gates.push(Gate {
            kind: GateKind::CarryMux,
            inputs: vec![0, 1, 2],
        });
        let mut inp = HashMap::new();
        inp.insert(0u32, true);
        inp.insert(1u32, true);
        inp.insert(2u32, false);
        assert!(nl.eval_comb(&inp, &HashMap::new())[3]);
        inp.insert(0u32, false);
        assert!(!nl.eval_comb(&inp, &HashMap::new())[3]);
    }
}
