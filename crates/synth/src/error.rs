//! Typed errors for netlist construction, validation, and parsing.
//!
//! The builder and parser used to abort on malformed input
//! (`assert!`/`panic!`); every failure is now a [`SynthError`] value so
//! callers — in particular the `galint` static analyzer — can report
//! the defect as a diagnostic instead of dying mid-elaboration.

use crate::netlist::NetId;
use std::fmt;

/// Any error produced by the synthesis crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// Two buses that must be equally wide are not.
    WidthMismatch {
        /// Operation that required the match (e.g. `"adder"`).
        context: &'static str,
        /// Width of the first operand.
        left: usize,
        /// Width of the second operand.
        right: usize,
    },
    /// An operation that needs at least one bit got an empty bus.
    EmptyBus {
        /// Operation that rejected the empty bus.
        context: &'static str,
    },
    /// A reduction tree was asked to use a non-associative gate kind.
    BadReduceOp {
        /// Debug rendering of the offending kind.
        kind: String,
    },
    /// Decoder select wider than the supported 6 bits.
    DecoderTooWide {
        /// Requested select width.
        bits: usize,
    },
    /// `patch_reg_d` was handed a Q net no register owns.
    UnknownRegQ {
        /// The unknown Q net.
        q: NetId,
    },
    /// A gate has the wrong number of input pins for its kind.
    BadArity {
        /// Gate index.
        gate: usize,
        /// Debug rendering of the kind.
        kind: String,
        /// Pins present.
        got: usize,
        /// Pins required.
        want: usize,
    },
    /// A gate references a net beyond the netlist.
    MissingNet {
        /// Gate index.
        gate: usize,
        /// The dangling net id.
        net: NetId,
    },
    /// A register references nets beyond the netlist.
    RegisterMissingNets {
        /// Register index in scan order.
        reg: usize,
    },
    /// A register's Q net is not a `RegQ` gate.
    NotARegQ {
        /// Register index in scan order.
        reg: usize,
    },
    /// Two registers claim the same Q net (a multiple-driver fault).
    DuplicateRegQ {
        /// The doubly-owned Q net.
        q: NetId,
    },
    /// A `RegQ` gate no register owns (a floating sequential output).
    OrphanRegQ {
        /// The orphan gate index.
        gate: usize,
    },
    /// The combinational gate graph contains a cycle.
    CombinationalCycle {
        /// Number of gates trapped on cycles.
        trapped: usize,
    },
    /// The FSM synthesizer got the wrong number of condition nets.
    CondCountMismatch {
        /// Condition nets required by the spec.
        want: usize,
        /// Condition nets provided.
        got: usize,
    },
    /// The Verilog parser rejected its input.
    Parse(String),
}

impl SynthError {
    /// Shorthand for parser failures.
    pub fn parse(msg: impl Into<String>) -> Self {
        SynthError::Parse(msg.into())
    }
}

impl From<String> for SynthError {
    fn from(msg: String) -> Self {
        SynthError::Parse(msg)
    }
}

impl From<&str> for SynthError {
    fn from(msg: &str) -> Self {
        SynthError::Parse(msg.to_owned())
    }
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::WidthMismatch {
                context,
                left,
                right,
            } => {
                write!(f, "{context}: bus width mismatch ({left} vs {right} bits)")
            }
            SynthError::EmptyBus { context } => write!(f, "{context}: empty bus"),
            SynthError::BadReduceOp { kind } => {
                write!(
                    f,
                    "reduce_tree: {kind} is not an associative reduction gate"
                )
            }
            SynthError::DecoderTooWide { bits } => {
                write!(
                    f,
                    "decoder wider than 6 select bits ({bits}) is unrealistic here"
                )
            }
            SynthError::UnknownRegQ { q } => write!(f, "patch_reg_d: unknown Q net {q}"),
            SynthError::BadArity {
                gate,
                kind,
                got,
                want,
            } => {
                write!(f, "gate {gate} ({kind}) has {got} inputs, needs {want}")
            }
            SynthError::MissingNet { gate, net } => {
                write!(f, "gate {gate} references missing net {net}")
            }
            SynthError::RegisterMissingNets { reg } => {
                write!(f, "register {reg} references missing nets")
            }
            SynthError::NotARegQ { reg } => write!(f, "register {reg} Q net is not a RegQ gate"),
            SynthError::DuplicateRegQ { q } => write!(f, "RegQ net {q} owned by two registers"),
            SynthError::OrphanRegQ { gate } => write!(f, "orphan RegQ gate {gate}"),
            SynthError::CombinationalCycle { trapped } => {
                write!(f, "combinational cycle detected ({trapped} gates trapped)")
            }
            SynthError::CondCountMismatch { want, got } => {
                write!(
                    f,
                    "FSM synthesis: spec needs {want} condition nets, got {got}"
                )
            }
            SynthError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SynthError>;
