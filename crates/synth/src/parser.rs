//! Parser for the gate-level Verilog dialect emitted by
//! [`crate::verilog::emit_verilog`] — closing the loop on the soft-IP
//! deliverable: what we hand off can be read back and proven equivalent
//! (the "netlist in / netlist out" check a downstream integrator would
//! run before trusting the artifact).
//!
//! The dialect is machine-generated and line-oriented, so the parser is
//! a strict line classifier, not a general Verilog front end: it
//! understands exactly the primitive instances, constant/IO `assign`s,
//! and `SCAN_REGISTER` cells the emitter writes, and rejects anything
//! else.

use std::collections::HashMap;

use crate::error::SynthError;
use crate::netlist::{Gate, GateKind, NetId, Netlist, RegCell};

/// Parse one emitted module back into a [`Netlist`]. All rejections are
/// typed [`SynthError`] values (`Parse` for lexical/shape problems; the
/// final structural check reuses [`Netlist::validate`]'s variants).
pub fn parse_verilog(src: &str) -> Result<Netlist, SynthError> {
    let mut gates: Vec<Option<Gate>> = Vec::new();
    let mut inputs: Vec<(String, Vec<(usize, NetId)>)> = Vec::new();
    let mut outputs: Vec<(String, Vec<(usize, NetId)>)> = Vec::new();
    let mut regs: Vec<(usize, RegCell)> = Vec::new();

    fn ensure(gates: &mut Vec<Option<Gate>>, id: usize) {
        if gates.len() <= id {
            gates.resize(id + 1, None);
        }
    }
    fn set_gate(gates: &mut Vec<Option<Gate>>, id: usize, g: Gate) -> Result<(), String> {
        ensure(gates, id);
        if gates[id].is_some() {
            return Err(format!("net n[{id}] defined twice"));
        }
        gates[id] = Some(g);
        Ok(())
    }

    /// Extract `n[<id>]` from a pin expression like `.y(n[42])`.
    fn net_of(expr: &str) -> Result<NetId, String> {
        let inner = expr
            .trim()
            .strip_prefix("n[")
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("expected n[..], got {expr:?}"))?;
        inner.parse::<NetId>().map_err(|e| e.to_string())
    }

    /// Split `KIND uID (.y(n[a]), .a(n[b]), .b(n[c]));` into pin exprs.
    fn pins(line: &str) -> Result<Vec<String>, String> {
        let open = line.find('(').ok_or("missing (")?;
        let close = line.rfind(')').ok_or("missing )")?;
        let body = &line[open + 1..close];
        // Split on top-level commas; pin bodies contain one '[..]' pair
        // and no nested commas, so a plain split is safe.
        Ok(body
            .split(',')
            .map(|p| {
                let p = p.trim();
                let inner_open = p.find('(').unwrap_or(0);
                let inner_close = p.rfind(')').unwrap_or(p.len());
                p[inner_open + 1..inner_close].to_string()
            })
            .collect())
    }

    for raw in src.lines() {
        let line = raw.trim();
        if line.is_empty()
            || line.starts_with("//")
            || line.starts_with("module")
            || line.starts_with("input ")
            || line.starts_with("input  wire")
            || line.starts_with("output wire")
            || line.starts_with("wire ")
            || line.starts_with(");")
            || line == "endmodule"
        {
            continue;
        }
        if let Some(rest) = line.strip_prefix("assign ") {
            let rest = rest.strip_suffix(';').ok_or("missing ;")?;
            let (lhs, rhs) = rest.split_once('=').ok_or("missing =")?;
            let (lhs, rhs) = (lhs.trim(), rhs.trim());
            if lhs == "scan_out" {
                continue; // chain tail binding, reconstructed from regs
            }
            if let Ok(id) = net_of(lhs) {
                // Constant or input binding.
                match rhs {
                    "1'b0" => set_gate(
                        &mut gates,
                        id as usize,
                        Gate {
                            kind: GateKind::Const0,
                            inputs: vec![],
                        },
                    )?,
                    "1'b1" => set_gate(
                        &mut gates,
                        id as usize,
                        Gate {
                            kind: GateKind::Const1,
                            inputs: vec![],
                        },
                    )?,
                    _ => {
                        // name[bit]
                        let (name, bit) = rhs
                            .split_once('[')
                            .ok_or_else(|| format!("bad input binding {rhs:?}"))?;
                        let bit: usize = bit
                            .strip_suffix(']')
                            .ok_or("missing ]")?
                            .parse()
                            .map_err(|e: std::num::ParseIntError| e.to_string())?;
                        set_gate(
                            &mut gates,
                            id as usize,
                            Gate {
                                kind: GateKind::Input,
                                inputs: vec![],
                            },
                        )?;
                        match inputs.iter_mut().find(|(n, _)| n == name) {
                            Some((_, bits)) => bits.push((bit, id)),
                            None => inputs.push((name.to_string(), vec![(bit, id)])),
                        }
                    }
                }
            } else {
                // Output binding: name[bit] = n[id].
                let id = net_of(rhs)?;
                let (name, bit) = lhs
                    .split_once('[')
                    .ok_or_else(|| format!("bad output binding {lhs:?}"))?;
                let bit: usize = bit
                    .strip_suffix(']')
                    .ok_or("missing ]")?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?;
                match outputs.iter_mut().find(|(n, _)| n == name) {
                    Some((_, bits)) => bits.push((bit, id)),
                    None => outputs.push((name.to_string(), vec![(bit, id)])),
                }
            }
            continue;
        }
        // Primitive instances.
        let kind_token = line.split_whitespace().next().unwrap_or("");
        let kind = match kind_token {
            "BUF" => Some(GateKind::Buf),
            "INV" => Some(GateKind::Inv),
            "AND2" => Some(GateKind::And2),
            "OR2" => Some(GateKind::Or2),
            "XOR2" => Some(GateKind::Xor2),
            "NAND2" => Some(GateKind::Nand2),
            "NOR2" => Some(GateKind::Nor2),
            "MUXCY" => Some(GateKind::CarryMux),
            _ => None,
        };
        if let Some(kind) = kind {
            let p = pins(line)?;
            let y = net_of(&p[0])? as usize;
            let ins: Vec<NetId> = p[1..1 + kind.arity()]
                .iter()
                .map(|e| net_of(e))
                .collect::<Result<_, _>>()?;
            set_gate(&mut gates, y, Gate { kind, inputs: ins })?;
            continue;
        }
        if kind_token == "SCAN_REGISTER" {
            // SCAN_REGISTER rK (.clk(clk), .d(n[d]), .q(n[q]), .se(..), .si(..), .so(..));
            let ordinal: usize = line
                .split_whitespace()
                .nth(1)
                .and_then(|t| t.strip_prefix('r'))
                .ok_or("bad scan register name")?
                .parse()
                .map_err(|e: std::num::ParseIntError| e.to_string())?;
            let p = pins(line)?;
            let d = net_of(&p[1])?;
            let q = net_of(&p[2])?;
            set_gate(
                &mut gates,
                q as usize,
                Gate {
                    kind: GateKind::RegQ,
                    inputs: vec![],
                },
            )?;
            regs.push((ordinal, RegCell { d, q }));
            continue;
        }
        return Err(SynthError::parse(format!("unrecognized line: {line:?}")));
    }

    // Finalize: every net must be defined.
    let gates: Vec<Gate> = gates
        .into_iter()
        .enumerate()
        .map(|(i, g)| g.ok_or(format!("net n[{i}] never defined")))
        .collect::<Result<_, _>>()?;

    let fix_bus = |mut bits: Vec<(usize, NetId)>| -> Vec<NetId> {
        bits.sort_by_key(|&(b, _)| b);
        bits.into_iter().map(|(_, n)| n).collect()
    };
    regs.sort_by_key(|&(o, _)| o);

    let nl = Netlist {
        gates,
        inputs: inputs.into_iter().map(|(n, b)| (n, fix_bus(b))).collect(),
        outputs: outputs.into_iter().map(|(n, b)| (n, fix_bus(b))).collect(),
        regs: regs.into_iter().map(|(_, r)| r).collect(),
    };
    nl.validate()?;
    Ok(nl)
}

/// Structural equality up to what the emission preserves: same gate
/// multiset per kind, same reg count and chain order, same bus shapes.
pub fn structurally_equal(a: &Netlist, b: &Netlist) -> bool {
    use GateKind::*;
    let kinds = [
        Const0, Const1, Input, RegQ, Buf, Inv, And2, Or2, Xor2, Nand2, Nor2, CarryMux,
    ];
    let count = |nl: &Netlist| -> HashMap<GateKind, usize> {
        kinds.iter().map(|&k| (k, nl.count_kind(k))).collect()
    };
    count(a) == count(b)
        && a.regs.len() == b.regs.len()
        && a.inputs
            .iter()
            .map(|(n, v)| (n.clone(), v.len()))
            .collect::<Vec<_>>()
            == b.inputs
                .iter()
                .map(|(n, v)| (n.clone(), v.len()))
                .collect::<Vec<_>>()
        && a.outputs
            .iter()
            .map(|(n, v)| (n.clone(), v.len()))
            .collect::<Vec<_>>()
            == b.outputs
                .iter()
                .map(|(n, v)| (n.clone(), v.len()))
                .collect::<Vec<_>>()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::builder::Builder;
    use crate::netlist::{bus_to_u64, u64_to_bus};
    use crate::verilog::emit_verilog;

    fn demo_netlist() -> Netlist {
        let mut b = Builder::new();
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let zero = b.const0();
        let (s, c) = b.adder(&x, &y, zero).unwrap();
        let gt = b.gt(&x, &y).unwrap();
        let mut d = s;
        d.push(c);
        d.push(gt);
        let q = b.reg_bank(&d);
        b.output("q", &q);
        b.finish()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = demo_netlist();
        let v = emit_verilog(&original, "demo");
        let parsed = parse_verilog(&v).expect("parse back");
        assert!(structurally_equal(&original, &parsed));
    }

    #[test]
    fn round_trip_is_functionally_equivalent() {
        let original = demo_netlist();
        let parsed = parse_verilog(&emit_verilog(&original, "demo")).unwrap();
        // Co-simulate one sequential step on both.
        for (a, b) in [(13u64, 200u64), (255, 255), (0, 1), (90, 89)] {
            let run = |nl: &Netlist| -> u64 {
                let mut inp = std::collections::HashMap::new();
                u64_to_bus(nl.input_bus("x").unwrap(), a, &mut inp);
                u64_to_bus(nl.input_bus("y").unwrap(), b, &mut inp);
                let regs = nl.regs.iter().map(|r| (r.q, false)).collect();
                let next = nl.step_seq(&inp, &regs);
                let vals = nl.eval_comb(&inp, &next);
                bus_to_u64(nl.output_bus("q").unwrap(), &vals)
            };
            assert_eq!(run(&original), run(&parsed), "inputs {a},{b}");
        }
    }

    #[test]
    fn ga_core_round_trips() {
        let (nl, _) = crate::gadesign::elaborate_ga_core();
        let v = emit_verilog(&nl, "ga_ip_core");
        let parsed = parse_verilog(&v).expect("parse the full core");
        assert!(structurally_equal(&nl, &parsed));
        assert_eq!(parsed.regs.len(), nl.regs.len());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_verilog("NONSENSE u0 (.y(n[0]));").is_err());
        assert!(parse_verilog("assign n[0] = 1'b0;\nassign n[0] = 1'b1;\nendmodule").is_err());
    }

    #[test]
    fn rejects_undefined_nets() {
        // A gate referencing a never-defined net must not validate.
        let src = "AND2 u5 (.y(n[5]), .a(n[0]), .b(n[1]));\nendmodule";
        assert!(parse_verilog(src).is_err());
    }
}
