//! Technology mapping: gates → Virtex-II Pro 4-input LUTs.
//!
//! A greedy maximal fanout-free-cone mapper: walking the netlist in
//! topological order, each gate's cone absorbs a fanin gate's cone when
//! the fanin has fanout 1 and the merged cone still has ≤ 4 leaf
//! inputs. A gate whose cone cannot be absorbed by its (sole) consumer
//! becomes a LUT root. Carry muxes map to the dedicated MUXCY chain and
//! consume no LUTs; buffers vanish into routing.

use crate::netlist::{GateKind, NetId, Netlist};
use std::collections::{HashMap, HashSet};

/// Result of technology mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapReport {
    /// 4-input LUTs used.
    pub lut4: usize,
    /// Dedicated carry muxes (MUXCY).
    pub carry_mux: usize,
    /// Flip-flops.
    pub ff: usize,
    /// Logic gates mapped (excluding sources/buffers).
    pub gates_mapped: usize,
}

/// Map a validated netlist to LUT4s.
pub fn map_to_lut4(nl: &Netlist) -> MapReport {
    map_with_roots(nl).0
}

/// Map and also return, per gate, whether it is a LUT cluster root
/// (true) or absorbed into its consumer's LUT (false). Sources, buffers
/// and carry muxes are never roots. Post-mapping static timing charges
/// LUT delay only at roots.
pub fn map_with_roots(nl: &Netlist) -> (MapReport, Vec<bool>) {
    let order = nl.validate().expect("netlist must validate before mapping");

    // Fanout counts (combinational consumers + register D pins +
    // primary outputs pin the net as a cone root).
    let n = nl.gates.len();
    let mut fanout = vec![0u32; n];
    for g in &nl.gates {
        for &i in &g.inputs {
            fanout[i as usize] += 1;
        }
    }
    let mut pinned: HashSet<NetId> = HashSet::new();
    for r in &nl.regs {
        pinned.insert(r.d);
    }
    for (_, bus) in &nl.outputs {
        for &b in bus {
            pinned.insert(b);
        }
    }

    let is_logic = |k: GateKind| {
        matches!(
            k,
            GateKind::Inv
                | GateKind::And2
                | GateKind::Or2
                | GateKind::Xor2
                | GateKind::Nand2
                | GateKind::Nor2
        )
    };

    // leaves[g] = the leaf input set of the cone rooted at g, if g's
    // cone is still mergeable into a consumer; None once g is a root.
    let mut leaves: HashMap<NetId, HashSet<NetId>> = HashMap::new();
    let mut lut_roots: HashSet<NetId> = HashSet::new();
    let mut carry = 0usize;
    let mut gates_mapped = 0usize;

    for &id in order.iter() {
        let g = &nl.gates[id as usize];
        match g.kind {
            GateKind::CarryMux => {
                carry += 1;
            }
            k if is_logic(k) => {
                gates_mapped += 1;
                // Build this gate's cone leaves by absorbing mergeable
                // single-fanout fanin cones.
                let mut cone: HashSet<NetId> = HashSet::new();
                let mut absorbed: Vec<NetId> = Vec::new();
                for &inp in &g.inputs {
                    let can_merge = fanout[inp as usize] == 1
                        && !pinned.contains(&inp)
                        && leaves.contains_key(&inp);
                    if can_merge {
                        // Tentatively absorb; revert if leaves blow past 4.
                        absorbed.push(inp);
                        for &l in &leaves[&inp] {
                            cone.insert(l);
                        }
                    } else {
                        cone.insert(inp);
                    }
                }
                // If the merged cone exceeds 4 leaves, un-absorb fanins
                // greedily until it fits (they become their own LUTs).
                // Evicting the fattest cone first keeps thin siblings
                // absorbed (e.g. a 4-leaf tree XOR a 2-leaf tree should
                // map to 2 LUTs, not 3).
                while cone.len() > 4 && !absorbed.is_empty() {
                    let fattest = absorbed
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, n)| leaves[n].len())
                        .map(|(i, _)| i)
                        .expect("absorbed is non-empty in loop guard");
                    let victim = absorbed.remove(fattest);
                    for l in &leaves[&victim] {
                        cone.remove(l);
                    }
                    // Re-add any leaf still needed by another absorbed
                    // fanin or directly.
                    let mut rebuilt: HashSet<NetId> = HashSet::new();
                    for &inp in &g.inputs {
                        if absorbed.contains(&inp) {
                            for &l in &leaves[&inp] {
                                rebuilt.insert(l);
                            }
                        } else {
                            rebuilt.insert(inp);
                        }
                    }
                    cone = rebuilt;
                    lut_roots.insert(victim);
                }
                if cone.len() > 4 {
                    // A 2-input gate can always fit (≤ 2 direct leaves);
                    // this can only trip if arity grows later.
                    cone = g.inputs.iter().copied().collect();
                }
                // Absorbed fanins are no longer roots.
                for a in &absorbed {
                    lut_roots.remove(a);
                }
                leaves.insert(id, cone);
                lut_roots.insert(id);
            }
            _ => {}
        }
    }

    let mut is_root = vec![false; n];
    for &r in &lut_roots {
        is_root[r as usize] = true;
    }
    (
        MapReport {
            lut4: lut_roots.len(),
            carry_mux: carry,
            ff: nl.regs.len(),
            gates_mapped,
        },
        is_root,
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::builder::Builder;

    #[test]
    fn single_gate_is_one_lut() {
        let mut b = Builder::new();
        let a = b.input("a", 1);
        let c = b.input("b", 1);
        let y = b.and(a[0], c[0]);
        b.output("y", &[y]);
        let r = map_to_lut4(&b.finish());
        assert_eq!(r.lut4, 1);
        assert_eq!(r.carry_mux, 0);
    }

    #[test]
    fn four_input_tree_packs_into_one_lut() {
        // y = (a&b) | (c&d): 3 gates, 4 leaf inputs → 1 LUT4.
        let mut b = Builder::new();
        let i = b.input("i", 4);
        let t1 = b.and(i[0], i[1]);
        let t2 = b.and(i[2], i[3]);
        let y = b.or(t1, t2);
        b.output("y", &[y]);
        let r = map_to_lut4(&b.finish());
        assert_eq!(r.lut4, 1, "a 4-leaf tree is exactly one LUT4");
    }

    #[test]
    fn six_input_tree_needs_two_luts() {
        // y = ((a&b)|(c&d)) ^ (e&f): 6 leaves → 2 LUTs.
        let mut b = Builder::new();
        let i = b.input("i", 6);
        let t1 = b.and(i[0], i[1]);
        let t2 = b.and(i[2], i[3]);
        let t3 = b.or(t1, t2);
        let t4 = b.and(i[4], i[5]);
        let y = b.xor(t3, t4);
        b.output("y", &[y]);
        let r = map_to_lut4(&b.finish());
        assert_eq!(r.lut4, 2);
    }

    #[test]
    fn fanout_blocks_absorption() {
        // t = a&b feeds two consumers: it must be its own LUT.
        let mut b = Builder::new();
        let i = b.input("i", 4);
        let t = b.and(i[0], i[1]);
        let y1 = b.or(t, i[2]);
        let y2 = b.xor(t, i[3]);
        b.output("y1", &[y1]);
        b.output("y2", &[y2]);
        let r = map_to_lut4(&b.finish());
        assert_eq!(r.lut4, 3);
    }

    #[test]
    fn adder_uses_carry_chain_not_luts_for_carry() {
        let mut b = Builder::new();
        let x = b.input("x", 16);
        let y = b.input("y", 16);
        let zero = b.const0();
        let (s, _c) = b.adder(&x, &y, zero).unwrap();
        b.output("s", &s);
        let r = map_to_lut4(&b.finish());
        assert_eq!(r.carry_mux, 16);
        // Two XORs per bit fold into ≤ 2 LUTs per bit.
        assert!(r.lut4 <= 32, "lut4 = {}", r.lut4);
        assert!(r.lut4 >= 16);
    }

    #[test]
    fn registers_count_as_ffs() {
        let mut b = Builder::new();
        let d = b.input("d", 8);
        let q = b.reg_bank(&d);
        b.output("q", &q);
        let r = map_to_lut4(&b.finish());
        assert_eq!(r.ff, 8);
        assert_eq!(r.lut4, 0, "pure registers use no logic LUTs");
    }
}
