//! ASIC implementation model (§III-C, §V).
//!
//! The paper emphasizes that the gate-level netlist "can be directly
//! used by commercial layout tools for chip layout generation", and the
//! conclusion reports a fabricated digital ASIC (GA module + slew-rate
//! fitness function) in a radiation-hardened SOI technology. §II-B
//! compares against the GAA chip (0.5 µm CMOS) and Chen et al.'s GA
//! chip (0.18 µm TSMC).
//!
//! This module prices a netlist in a standard-cell technology: each
//! primitive has a NAND2-equivalent gate count (the classic area
//! currency), and a technology node supplies the NAND2 cell area and a
//! routing overhead factor, giving die-area estimates comparable across
//! the nodes the related work used.

use crate::netlist::{GateKind, Netlist};

/// A standard-cell technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Human-readable name.
    pub name: &'static str,
    /// NAND2 cell area in µm².
    pub nand2_area_um2: f64,
    /// Area multiplier for routing/power/clock overhead after placement.
    pub routing_overhead: f64,
}

/// 0.5 µm CMOS — the node of the GAA chip (Wakabayashi et al.).
pub const NODE_500NM: TechNode = TechNode {
    name: "0.5um CMOS",
    nand2_area_um2: 60.0,
    routing_overhead: 1.8,
};

/// 0.18 µm TSMC — the node of Chen et al.'s GA chip.
pub const NODE_180NM: TechNode = TechNode {
    name: "0.18um TSMC",
    nand2_area_um2: 9.0,
    routing_overhead: 1.7,
};

/// NAND2-equivalents per primitive (standard-cell library folklore:
/// INV 0.5, 2-input gates 1, XOR2 2.5, mux 2, scan flop 7).
pub fn nand2_equivalents(kind: GateKind) -> f64 {
    match kind {
        GateKind::Const0 | GateKind::Const1 | GateKind::Input | GateKind::RegQ => 0.0,
        GateKind::Buf => 0.5,
        GateKind::Inv => 0.5,
        GateKind::And2 | GateKind::Or2 => 1.5,
        GateKind::Nand2 | GateKind::Nor2 => 1.0,
        GateKind::Xor2 => 2.5,
        GateKind::CarryMux => 2.0,
    }
}

/// NAND2-equivalents per scan register.
pub const SCAN_FF_NAND2: f64 = 7.0;

/// Die-area estimate for one netlist in one technology.
#[derive(Debug, Clone, PartialEq)]
pub struct AsicReport {
    /// Technology node used.
    pub node: TechNode,
    /// Total NAND2-equivalent gate count.
    pub nand2_equiv: f64,
    /// Standard-cell area before routing overhead (mm²).
    pub cell_area_mm2: f64,
    /// Estimated placed-and-routed core area (mm²).
    pub core_area_mm2: f64,
}

/// Price a netlist on a node.
pub fn price(nl: &Netlist, node: TechNode) -> AsicReport {
    let comb: f64 = nl.gates.iter().map(|g| nand2_equivalents(g.kind)).sum();
    let nand2_equiv = comb + nl.regs.len() as f64 * SCAN_FF_NAND2;
    let cell_area_mm2 = nand2_equiv * node.nand2_area_um2 * 1e-6;
    AsicReport {
        node,
        nand2_equiv,
        cell_area_mm2,
        core_area_mm2: cell_area_mm2 * node.routing_overhead,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::builder::Builder;

    #[test]
    fn nand2_equivalents_ordering() {
        // XOR is the most expensive 2-input gate; sources are free.
        assert!(nand2_equivalents(GateKind::Xor2) > nand2_equivalents(GateKind::And2));
        assert!(nand2_equivalents(GateKind::And2) > nand2_equivalents(GateKind::Inv));
        assert_eq!(nand2_equivalents(GateKind::Input), 0.0);
    }

    #[test]
    fn smaller_node_means_smaller_die() {
        let mut b = Builder::new();
        let x = b.input("x", 16);
        let y = b.input("y", 16);
        let zero = b.const0();
        let (s, _) = b.adder(&x, &y, zero).unwrap();
        let q = b.reg_bank(&s);
        b.output("q", &q);
        let nl = b.finish();
        let big = price(&nl, NODE_500NM);
        let small = price(&nl, NODE_180NM);
        assert_eq!(big.nand2_equiv, small.nand2_equiv);
        assert!(big.core_area_mm2 > 4.0 * small.core_area_mm2);
    }

    #[test]
    fn ga_core_asic_is_plausible_size() {
        // The GAA chip (a comparable elitist GA accelerator) was a few
        // tens of mm² in 0.5 µm; our core must land in the same decade.
        let (nl, _) = crate::gadesign::elaborate_ga_core();
        let r = price(&nl, NODE_500NM);
        assert!(
            r.core_area_mm2 > 0.5 && r.core_area_mm2 < 50.0,
            "core area {:.2} mm² out of band",
            r.core_area_mm2
        );
        let r180 = price(&nl, NODE_180NM);
        assert!(r180.core_area_mm2 < r.core_area_mm2 / 4.0);
    }

    #[test]
    fn registers_dominate_a_register_file() {
        let mut b = Builder::new();
        let d = b.input("d", 64);
        let q = b.reg_bank(&d);
        b.output("q", &q);
        let r = price(&b.finish(), NODE_180NM);
        assert!((r.nand2_equiv - 64.0 * SCAN_FF_NAND2).abs() < 1e-9);
    }
}
