//! Gate-level fault injection for the compiled netlist simulation.
//!
//! Every sequential element of the synthesized design is a scan
//! register ([`crate::netlist::Netlist::regs`], in scan-chain order),
//! so the register index doubles as a stable **fault site** ID: site
//! *s* is the flip-flop at scan position *s*. The injector corrupts a
//! site's Q word directly in [`BitSimW`] state *after* a clock edge —
//! the word-level model of a particle strike on the storage node — and
//! supports the three classic polarities: a transient flip (SEU) and
//! stuck-at-0/1 held for a bounded number of cycles.
//!
//! The injector is deliberately a passive helper: the caller owns the
//! step loop and calls [`FaultInjector::after_step`] once per edge, so
//! it composes with any stimulus schedule (the CA-RNG extraction loop,
//! the campaign driver's GA runs) without the simulator knowing faults
//! exist.

use crate::bitsim::BitSimW;
use crate::netlist::NetId;

/// Fault polarity and duration at one site/lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Single-event upset: XOR the stored bit once, at `at_cycle`.
    Transient,
    /// Stuck-at-0 for `cycles` consecutive edges starting at `at_cycle`.
    Stuck0 {
        /// Duration in cycles (0 = no effect).
        cycles: u64,
    },
    /// Stuck-at-1 for `cycles` consecutive edges starting at `at_cycle`.
    Stuck1 {
        /// Duration in cycles (0 = no effect).
        cycles: u64,
    },
}

impl NetFaultKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            NetFaultKind::Transient => "flip",
            NetFaultKind::Stuck0 { .. } => "stuck0",
            NetFaultKind::Stuck1 { .. } => "stuck1",
        }
    }
}

/// One fault: which flip-flop, which simulation lane, when, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFault {
    /// Scan-order register index (see [`BitSimW::compiled`] `.regs()`).
    pub site: usize,
    /// Simulation lane (0..[`BitSimW::LANES`] of the driven simulator —
    /// word `lane / 64`, bit `lane % 64`, at any lane width `W`).
    pub lane: usize,
    /// First clock edge (0-based, counted by the injector) affected.
    pub at_cycle: u64,
    /// Polarity/duration.
    pub kind: NetFaultKind,
}

/// Applies a fault list to a [`BitSim`] as its owner steps it.
///
/// Owns the cycle counter: call [`FaultInjector::after_step`] exactly
/// once after every `sim.step()` and the faults land on the edges their
/// `at_cycle` names.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    faults: Vec<NetFault>,
    cycle: u64,
}

impl FaultInjector {
    /// An injector for a fixed fault list.
    pub fn new(faults: Vec<NetFault>) -> Self {
        FaultInjector { faults, cycle: 0 }
    }

    /// Edges observed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The injectable site list of a compiled netlist: one Q net per
    /// scan register, in scan-chain order. `galint` checks this list is
    /// exactly the set of sequential elements, so no flip-flop can
    /// silently fall outside a campaign's reach.
    pub fn sites<const W: usize>(sim: &BitSimW<'_, W>) -> Vec<NetId> {
        sim.compiled().regs().iter().map(|r| r.q).collect()
    }

    /// Corrupt the post-edge register state per the active faults, then
    /// advance the injector's cycle counter. Lane addressing is
    /// width-aware: lane *k* of a `W`-word simulator is bit `k % 64` of
    /// word `k / 64`.
    pub fn after_step<const W: usize>(&mut self, sim: &mut BitSimW<'_, W>) {
        let now = self.cycle;
        for f in &self.faults {
            let active = match f.kind {
                NetFaultKind::Transient => now == f.at_cycle,
                NetFaultKind::Stuck0 { cycles } | NetFaultKind::Stuck1 { cycles } => {
                    now >= f.at_cycle && now.saturating_sub(f.at_cycle) < cycles
                }
            };
            if !active {
                continue;
            }
            let regs = sim.compiled().regs();
            assert!(
                f.site < regs.len(),
                "fault site {} outside the {}-register scan chain",
                f.site,
                regs.len()
            );
            assert!(
                f.lane < BitSimW::<W>::LANES,
                "fault lane {} outside the {} lanes of the simulator",
                f.lane,
                BitSimW::<W>::LANES
            );
            let q = regs[f.site].q;
            let (word, bit) = (f.lane / 64, 1u64 << (f.lane % 64));
            let mut words = sim.net_words(q);
            words[word] = match f.kind {
                NetFaultKind::Transient => words[word] ^ bit,
                NetFaultKind::Stuck0 { .. } => words[word] & !bit,
                NetFaultKind::Stuck1 { .. } => words[word] | bit,
            };
            sim.set_net_words(q, words);
        }
        self.cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitsim::CompiledNetlist;
    use crate::netlist::{Gate, GateKind, Netlist, RegCell};

    /// q ← !q toggle: the simplest stateful netlist.
    fn toggle() -> CompiledNetlist {
        let mut nl = Netlist::default();
        nl.gates.push(Gate {
            kind: GateKind::RegQ,
            inputs: vec![],
        });
        nl.gates.push(Gate {
            kind: GateKind::Inv,
            inputs: vec![0],
        });
        nl.regs.push(RegCell { d: 1, q: 0 });
        CompiledNetlist::compile(&nl).expect("toggle compiles")
    }

    #[test]
    fn transient_flip_hits_one_lane_one_cycle() {
        let cn = toggle();
        let mut sim = cn.sim();
        let mut inj = FaultInjector::new(vec![NetFault {
            site: 0,
            lane: 3,
            at_cycle: 2,
            kind: NetFaultKind::Transient,
        }]);
        // A fault-free toggle has every lane in phase; the flip puts
        // lane 3 in permanent antiphase from edge 2 on, lane 0 never.
        for edge in 0..8u64 {
            sim.step();
            inj.after_step(&mut sim);
            let l0 = sim.lane_bool(0, 0);
            let l3 = sim.lane_bool(0, 3);
            if edge < 2 {
                assert_eq!(l0, l3, "no fault before edge 2");
            } else {
                assert_ne!(l0, l3, "flip persists through the toggle");
            }
        }
    }

    #[test]
    fn stuck_at_releases_after_duration() {
        let cn = toggle();
        let mut sim = cn.sim();
        let mut inj = FaultInjector::new(vec![NetFault {
            site: 0,
            lane: 0,
            at_cycle: 1,
            kind: NetFaultKind::Stuck1 { cycles: 3 },
        }]);
        let mut seen = Vec::new();
        for _ in 0..7 {
            sim.step();
            inj.after_step(&mut sim);
            seen.push(sim.lane_bool(0, 0));
        }
        // Edges 0..: free toggle gives 1,0,1,0…; stuck-1 pins edges
        // 1-3; after release the toggle resumes from the pinned value.
        assert_eq!(seen, vec![true, true, true, true, false, true, false]);
    }

    #[test]
    fn site_list_is_scan_ordered_q_nets() {
        let cn = toggle();
        let sim = cn.sim();
        assert_eq!(FaultInjector::sites(&sim), vec![0]);
    }

    #[test]
    fn wide_injection_lands_in_the_right_word() {
        // Lane 129 of a 4-word simulator is bit 1 of word 2; the flip
        // must corrupt exactly that lane and leak into no other.
        let cn = toggle();
        let mut sim = cn.sim_wide::<4>();
        let mut inj = FaultInjector::new(vec![NetFault {
            site: 0,
            lane: 129,
            at_cycle: 1,
            kind: NetFaultKind::Transient,
        }]);
        for edge in 0..6u64 {
            sim.step();
            inj.after_step(&mut sim);
            for lane in [0usize, 63, 64, 128, 130, 255] {
                assert_eq!(
                    sim.lane_bool(0, 0),
                    sim.lane_bool(0, lane),
                    "fault leaked into lane {lane} at edge {edge}"
                );
            }
            let hit = sim.lane_bool(0, 129) != sim.lane_bool(0, 0);
            assert_eq!(hit, edge >= 1, "lane 129 antiphase from edge 1 on");
        }
    }

    #[test]
    #[should_panic(expected = "outside the 64 lanes")]
    fn out_of_range_lane_is_rejected() {
        let cn = toggle();
        let mut sim = cn.sim();
        let mut inj = FaultInjector::new(vec![NetFault {
            site: 0,
            lane: 64,
            at_cycle: 0,
            kind: NetFaultKind::Transient,
        }]);
        sim.step();
        inj.after_step(&mut sim);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_site_is_rejected() {
        let cn = toggle();
        let mut sim = cn.sim();
        let mut inj = FaultInjector::new(vec![NetFault {
            site: 9,
            lane: 0,
            at_cycle: 0,
            kind: NetFaultKind::Transient,
        }]);
        sim.step();
        inj.after_step(&mut sim);
    }
}
