//! One-hot controller synthesis — the KISS → SIS step of Fig. 1.
//!
//! The AUDI flow emits the controller as a state table (KISS format) and
//! runs it through Berkeley SIS for logic synthesis. Here a controller
//! is specified as a transition table over one-hot states and a small
//! set of Boolean condition inputs; synthesis produces the next-state
//! logic as two-level AND/OR networks feeding a one-hot state register
//! bank, plus Moore outputs as OR-trees over states.

use crate::builder::Builder;
use crate::error::SynthError;
use crate::netlist::NetId;

/// A guard over the condition inputs: for each referenced condition
/// index, the required value. Empty = unconditional.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Guard(pub Vec<(usize, bool)>);

impl Guard {
    /// Unconditional transition.
    pub fn always() -> Self {
        Guard(Vec::new())
    }

    /// Single-literal guard.
    pub fn when(cond: usize, value: bool) -> Self {
        Guard(vec![(cond, value)])
    }

    /// Evaluate against a condition vector (reference semantics).
    pub fn eval(&self, conds: &[bool]) -> bool {
        self.0.iter().all(|&(i, v)| conds[i] == v)
    }
}

/// One transition: from `state`, under `guard`, go to `next`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state index.
    pub from: usize,
    /// Guard over condition inputs. Transitions are prioritized in
    /// declaration order; a state with no matching transition holds.
    pub guard: Guard,
    /// Destination state index.
    pub to: usize,
}

/// A controller specification.
#[derive(Debug, Clone, Default)]
pub struct FsmSpec {
    /// Number of states (one-hot register width).
    pub n_states: usize,
    /// Number of Boolean condition inputs.
    pub n_conds: usize,
    /// Transition list (priority = order within the same source state).
    pub transitions: Vec<Transition>,
    /// Optional human-readable state names, indexed by state. May be
    /// empty (anonymous states) or exactly `n_states` long; lint
    /// diagnostics and reports use these when present.
    pub state_names: Vec<String>,
}

/// Synthesized controller handles.
#[derive(Debug, Clone)]
pub struct SynthesizedFsm {
    /// One-hot state register Q nets.
    pub state_q: Vec<NetId>,
    /// Condition input nets used by the logic.
    pub cond_nets: Vec<NetId>,
    /// Gates added by the controller (for inventory reporting).
    pub gates_added: usize,
}

impl FsmSpec {
    /// Human-readable name of a state, falling back to `S<idx>`.
    pub fn state_name(&self, idx: usize) -> String {
        self.state_names
            .get(idx)
            .cloned()
            .unwrap_or_else(|| format!("S{idx}"))
    }

    /// Reference next-state function for verification.
    pub fn next_state(&self, current: usize, conds: &[bool]) -> usize {
        for t in &self.transitions {
            if t.from == current && t.guard.eval(conds) {
                return t.to;
            }
        }
        current
    }

    /// Synthesize the controller into `bld`, taking the condition nets
    /// as inputs. Returns the one-hot state register nets (state 0 is
    /// the reset state by construction: its Q is the only one assumed
    /// high at power-on in simulation harnesses).
    pub fn synthesize(
        &self,
        bld: &mut Builder,
        cond_nets: &[NetId],
    ) -> Result<SynthesizedFsm, SynthError> {
        if cond_nets.len() != self.n_conds {
            return Err(SynthError::CondCountMismatch {
                want: self.n_conds,
                got: cond_nets.len(),
            });
        }
        let before = bld.gate_count();

        // Forward-declare the one-hot Q nets by building the register
        // bank last: first compute, per destination state, the OR of
        // (source-state AND guard) terms. We need the Q nets while
        // building D logic, so allocate placeholder buffers via a
        // two-pass approach: pass 1 creates the Q nets through a
        // temporary zero D; pass 2 rebuilds D and re-binds. Simpler:
        // create Q nets first as a reg bank over placeholder D nets,
        // then patch the D pins — the builder exposes no patching, so
        // we instead synthesize with explicit recurrence:
        //   D_j = OR over transitions into j of (Q_from AND guard)
        //         OR (Q_j AND no-transition-out-of-j-fires)
        // and build the bank at the end with Q placeholders resolved by
        // the netlist's index discipline (RegQ gates created first).
        //
        // Implementation: create the RegQ gates immediately (reg bank
        // with dummy D = const0), then overwrite each cell's D below.
        let zero = bld.const0();
        let dummy_d: Vec<NetId> = (0..self.n_states).map(|_| zero).collect();
        let state_q = bld.reg_bank(&dummy_d);

        // Literal nets for guards.
        let cond_inv: Vec<NetId> = cond_nets.iter().map(|&c| bld.not(c)).collect();
        let guard_net = |bld: &mut Builder, g: &Guard| -> Option<NetId> {
            let mut acc: Option<NetId> = None;
            for &(ci, val) in &g.0 {
                let lit = if val { cond_nets[ci] } else { cond_inv[ci] };
                acc = Some(match acc {
                    None => lit,
                    Some(p) => bld.and(p, lit),
                });
            }
            acc
        };

        // For priority semantics within a source state: a transition
        // fires iff its guard holds and no earlier transition from the
        // same state fired.
        let mut fire_nets: Vec<NetId> = Vec::with_capacity(self.transitions.len());
        let mut earlier_fired: Vec<Option<NetId>> = vec![None; self.n_states];
        for t in &self.transitions {
            let g = guard_net(bld, &t.guard);
            let raw = match g {
                None => state_q[t.from],
                Some(gn) => bld.and(state_q[t.from], gn),
            };
            let fire = match earlier_fired[t.from] {
                None => raw,
                Some(e) => {
                    let ne = bld.not(e);
                    bld.and(raw, ne)
                }
            };
            earlier_fired[t.from] = Some(match earlier_fired[t.from] {
                None => fire,
                Some(e) => bld.or(e, fire),
            });
            fire_nets.push(fire);
        }

        // D_j = OR(fires into j) OR (Q_j AND !any-fire-from-j).
        let mut d_nets: Vec<NetId> = Vec::with_capacity(self.n_states);
        for j in 0..self.n_states {
            let mut acc: Option<NetId> = None;
            for (ti, t) in self.transitions.iter().enumerate() {
                if t.to == j {
                    acc = Some(match acc {
                        None => fire_nets[ti],
                        Some(p) => bld.or(p, fire_nets[ti]),
                    });
                }
            }
            let hold = match earlier_fired[j] {
                None => state_q[j],
                Some(any) => {
                    let n = bld.not(any);
                    bld.and(state_q[j], n)
                }
            };
            let d = match acc {
                None => hold,
                Some(t) => bld.or(t, hold),
            };
            d_nets.push(d);
        }

        // Patch the register D pins (the builder created them with a
        // dummy constant-zero D).
        bld.patch_reg_d(&state_q, &d_nets)?;

        Ok(SynthesizedFsm {
            state_q,
            cond_nets: cond_nets.to_vec(),
            gates_added: bld.gate_count() - before,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::netlist::NetId;
    use std::collections::HashMap;

    /// A 3-state controller: Idle → Busy on start; Busy → Done on done;
    /// Done → Idle always.
    fn spec() -> FsmSpec {
        FsmSpec {
            n_states: 3,
            n_conds: 2,
            transitions: vec![
                Transition {
                    from: 0,
                    guard: Guard::when(0, true),
                    to: 1,
                },
                Transition {
                    from: 1,
                    guard: Guard::when(1, true),
                    to: 2,
                },
                Transition {
                    from: 2,
                    guard: Guard::always(),
                    to: 0,
                },
            ],
            state_names: vec!["Idle".into(), "Busy".into(), "Done".into()],
        }
    }

    fn run_fsm(spec: &FsmSpec, conds_seq: &[Vec<bool>]) -> Vec<usize> {
        let mut bld = Builder::new();
        let conds = bld.input("conds", spec.n_conds);
        let fsm = spec.synthesize(&mut bld, &conds).expect("fsm synthesis");
        bld.output("state", &fsm.state_q);
        let nl = bld.finish();
        nl.validate().expect("valid fsm netlist");
        // Start in state 0 (one-hot).
        let mut reg: HashMap<NetId, bool> = fsm
            .state_q
            .iter()
            .enumerate()
            .map(|(i, &q)| (q, i == 0))
            .collect();
        let mut states = Vec::new();
        for conds_now in conds_seq {
            let mut inp = HashMap::new();
            for (i, &c) in nl.input_bus("conds").unwrap().iter().enumerate() {
                inp.insert(c, conds_now[i]);
            }
            reg = nl.step_seq(&inp, &reg);
            let hot: Vec<usize> = fsm
                .state_q
                .iter()
                .enumerate()
                .filter(|(_, &q)| reg[&q])
                .map(|(i, _)| i)
                .collect();
            assert_eq!(hot.len(), 1, "state register must stay one-hot: {hot:?}");
            states.push(hot[0]);
        }
        states
    }

    #[test]
    fn follows_reference_semantics() {
        let s = spec();
        let seq = vec![
            vec![false, false], // hold Idle
            vec![true, false],  // → Busy
            vec![false, false], // hold Busy
            vec![false, true],  // → Done
            vec![false, false], // → Idle (unconditional)
            vec![true, true],   // → Busy
        ];
        let got = run_fsm(&s, &seq);
        // Reference trace.
        let mut cur = 0;
        let mut expect = Vec::new();
        for c in &seq {
            cur = s.next_state(cur, c);
            expect.push(cur);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn priority_order_resolves_conflicts() {
        // Two transitions from state 0; the first in declaration order
        // wins when both guards hold.
        let s = FsmSpec {
            n_states: 3,
            n_conds: 2,
            transitions: vec![
                Transition {
                    from: 0,
                    guard: Guard::when(0, true),
                    to: 1,
                },
                Transition {
                    from: 0,
                    guard: Guard::when(1, true),
                    to: 2,
                },
            ],
            ..FsmSpec::default()
        };
        let got = run_fsm(&s, &[vec![true, true]]);
        assert_eq!(got, vec![1]);
        let got = run_fsm(&s, &[vec![false, true]]);
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn unreferenced_state_holds() {
        let s = FsmSpec {
            n_states: 2,
            n_conds: 1,
            transitions: vec![],
            ..FsmSpec::default()
        };
        let got = run_fsm(&s, &[vec![true], vec![false]]);
        assert_eq!(got, vec![0, 0]);
    }

    #[test]
    fn multi_literal_guard() {
        let s = FsmSpec {
            n_states: 2,
            n_conds: 2,
            transitions: vec![Transition {
                from: 0,
                guard: Guard(vec![(0, true), (1, false)]),
                to: 1,
            }],
            ..FsmSpec::default()
        };
        assert_eq!(run_fsm(&s, &[vec![true, true]]), vec![0]);
        assert_eq!(run_fsm(&s, &[vec![true, false]]), vec![1]);
    }
}
