//! Ternary (0/1/X) logic — the abstract domain for static dataflow
//! analysis over compiled netlists.
//!
//! [`Tern`] is the three-point lattice `0, 1 ⊑ X`: a net is `Zero` or
//! `One` when its value is the same in **every** execution covered by
//! the analysis, and `X` when it may differ. The gate operations here
//! are the standard ternary extensions of the Boolean ones (Kleene
//! logic), so each is a *sound abstraction*: if the operands cover the
//! concrete inputs, the result covers the concrete output. That is the
//! refinement property `galint`'s soundness proptest checks against
//! concrete [`BitSim`](crate::bitsim::BitSim) runs.
//!
//! The mux gets the *precise* ternary semantics (select unknown but
//! both data legs equal and known ⇒ known) rather than the weaker
//! AND/OR decomposition — still sound, and it is exactly the case that
//! matters when a register's hold mux has a constant data leg.

/// One ternary value: a definite bit or "unknown/varies" (`X`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tern {
    /// Definitely 0 in every covered execution.
    #[default]
    Zero,
    /// Definitely 1 in every covered execution.
    One,
    /// Unknown — may be 0 in some executions and 1 in others.
    X,
}

impl Tern {
    /// Lift a concrete bit.
    #[inline]
    pub fn from_bool(b: bool) -> Tern {
        if b {
            Tern::One
        } else {
            Tern::Zero
        }
    }

    /// The definite value, when there is one.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Tern::Zero => Some(false),
            Tern::One => Some(true),
            Tern::X => None,
        }
    }

    /// True for `Zero`/`One`.
    #[inline]
    pub fn is_const(self) -> bool {
        self != Tern::X
    }

    /// Lattice join (least upper bound): equal values stay, disagreement
    /// goes to `X`.
    #[inline]
    pub fn join(self, other: Tern) -> Tern {
        if self == other {
            self
        } else {
            Tern::X
        }
    }

    /// Refinement check: does the concrete bit `b` lie under this
    /// abstract value? (`X` covers everything; a constant covers only
    /// itself.)
    #[inline]
    pub fn covers(self, b: bool) -> bool {
        match self {
            Tern::X => true,
            v => v == Tern::from_bool(b),
        }
    }

    /// Ternary NOT. An inherent method like its `and`/`or`/`xor`
    /// siblings — the Kleene ops form one family, not operator
    /// overloads.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tern {
        match self {
            Tern::Zero => Tern::One,
            Tern::One => Tern::Zero,
            Tern::X => Tern::X,
        }
    }

    /// Ternary AND: a definite 0 dominates either way.
    #[inline]
    pub fn and(self, o: Tern) -> Tern {
        match (self, o) {
            (Tern::Zero, _) | (_, Tern::Zero) => Tern::Zero,
            (Tern::One, Tern::One) => Tern::One,
            _ => Tern::X,
        }
    }

    /// Ternary OR: a definite 1 dominates either way.
    #[inline]
    pub fn or(self, o: Tern) -> Tern {
        match (self, o) {
            (Tern::One, _) | (_, Tern::One) => Tern::One,
            (Tern::Zero, Tern::Zero) => Tern::Zero,
            _ => Tern::X,
        }
    }

    /// Ternary XOR: definite only when both operands are.
    #[inline]
    pub fn xor(self, o: Tern) -> Tern {
        match (self.as_bool(), o.as_bool()) {
            (Some(a), Some(b)) => Tern::from_bool(a ^ b),
            _ => Tern::X,
        }
    }

    /// Precise ternary 2:1 mux, `sel ? hi : lo`: a definite select
    /// picks its leg; an unknown select still yields a definite value
    /// when both legs agree on one.
    #[inline]
    pub fn mux(sel: Tern, hi: Tern, lo: Tern) -> Tern {
        match sel {
            Tern::One => hi,
            Tern::Zero => lo,
            Tern::X => {
                if hi == lo && hi.is_const() {
                    hi
                } else {
                    Tern::X
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Tern; 3] = [Tern::Zero, Tern::One, Tern::X];

    /// Every concrete bit covered by an abstract operand.
    fn gamma(t: Tern) -> Vec<bool> {
        match t {
            Tern::Zero => vec![false],
            Tern::One => vec![true],
            Tern::X => vec![false, true],
        }
    }

    #[test]
    fn join_is_lub() {
        for a in ALL {
            assert_eq!(a.join(a), a);
            assert_eq!(a.join(Tern::X), Tern::X);
        }
        assert_eq!(Tern::Zero.join(Tern::One), Tern::X);
    }

    #[test]
    fn unary_and_binary_ops_are_sound_and_exhaustive() {
        // Soundness: for every abstract operand pair and every concrete
        // refinement, the concrete result is covered by the abstract one.
        for a in ALL {
            for ca in gamma(a) {
                assert!(a.not().covers(!ca), "not {a:?}");
            }
            for b in ALL {
                for ca in gamma(a) {
                    for cb in gamma(b) {
                        assert!(a.and(b).covers(ca & cb), "and {a:?} {b:?}");
                        assert!(a.or(b).covers(ca | cb), "or {a:?} {b:?}");
                        assert!(a.xor(b).covers(ca ^ cb), "xor {a:?} {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn mux_is_sound_and_precise_on_agreeing_legs() {
        for s in ALL {
            for hi in ALL {
                for lo in ALL {
                    let abs = Tern::mux(s, hi, lo);
                    for cs in gamma(s) {
                        for chi in gamma(hi) {
                            for clo in gamma(lo) {
                                let concrete = if cs { chi } else { clo };
                                assert!(abs.covers(concrete), "mux {s:?} {hi:?} {lo:?}");
                            }
                        }
                    }
                }
            }
        }
        // The precision case the AND/OR decomposition would lose.
        assert_eq!(Tern::mux(Tern::X, Tern::One, Tern::One), Tern::One);
        assert_eq!(Tern::mux(Tern::X, Tern::Zero, Tern::Zero), Tern::Zero);
        assert_eq!(Tern::mux(Tern::X, Tern::X, Tern::X), Tern::X);
    }

    #[test]
    fn constant_queries() {
        assert!(Tern::Zero.is_const() && Tern::One.is_const() && !Tern::X.is_const());
        assert_eq!(Tern::from_bool(true).as_bool(), Some(true));
        assert_eq!(Tern::X.as_bool(), None);
        assert!(Tern::X.covers(false) && Tern::X.covers(true));
        assert!(!Tern::Zero.covers(true));
    }
}
