//! The RT-level component library, elaborated into gates.
//!
//! These are the "simple components such as adders, multiplexers, etc."
//! that the AUDI datapath instantiates (§III-A: structural descriptions
//! over simple components "ensure that these netlists will synthesize
//! easily using tools from many vendors"). Every builder is checked for
//! functional equivalence against its arithmetic reference in the test
//! suite — the gate-level verification step of the paper's flow.
//!
//! Construction that can fail (width mismatches, empty buses, unknown
//! register Q nets) returns [`SynthError`] rather than panicking, so a
//! malformed elaboration surfaces as a reportable diagnostic — the same
//! contract `galint` relies on when it lints deliberately broken
//! designs.

use crate::error::SynthError;
use crate::netlist::{Gate, GateKind, NetId, Netlist, RegCell};

/// Incremental netlist builder.
#[derive(Debug, Default)]
pub struct Builder {
    nl: Netlist,
}

impl Builder {
    /// New empty builder.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Finish and return the netlist.
    pub fn finish(self) -> Netlist {
        self.nl
    }

    fn push(&mut self, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        let id = self.nl.gates.len() as NetId;
        self.nl.gates.push(Gate { kind, inputs });
        id
    }

    fn check_widths(context: &'static str, a: &[NetId], b: &[NetId]) -> Result<(), SynthError> {
        if a.len() != b.len() {
            return Err(SynthError::WidthMismatch {
                context,
                left: a.len(),
                right: b.len(),
            });
        }
        Ok(())
    }

    fn check_width_is(context: &'static str, bus: &[NetId], want: usize) -> Result<(), SynthError> {
        if bus.len() != want {
            return Err(SynthError::WidthMismatch {
                context,
                left: bus.len(),
                right: want,
            });
        }
        Ok(())
    }

    /// Constant 0 net.
    pub fn const0(&mut self) -> NetId {
        self.push(GateKind::Const0, vec![])
    }

    /// Constant 1 net.
    pub fn const1(&mut self) -> NetId {
        self.push(GateKind::Const1, vec![])
    }

    /// Declare a named input bus of `width` bits (LSB first).
    pub fn input(&mut self, name: &str, width: usize) -> Vec<NetId> {
        let bits: Vec<NetId> = (0..width)
            .map(|_| self.push(GateKind::Input, vec![]))
            .collect();
        self.nl.inputs.push((name.to_owned(), bits.clone()));
        bits
    }

    /// Declare a named output bus.
    pub fn output(&mut self, name: &str, bits: &[NetId]) {
        self.nl.outputs.push((name.to_owned(), bits.to_vec()));
    }

    /// NOT gate.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Inv, vec![a])
    }

    /// AND gate.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::And2, vec![a, b])
    }

    /// OR gate.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Or2, vec![a, b])
    }

    /// XOR gate.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xor2, vec![a, b])
    }

    /// NAND gate.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nand2, vec![a, b])
    }

    /// NOR gate.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nor2, vec![a, b])
    }

    /// Dedicated carry mux: `sel ? a : b`.
    pub fn carry_mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::CarryMux, vec![sel, a, b])
    }

    /// LUT-style 2:1 mux built from gates: `sel ? a : b`.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        let ns = self.not(sel);
        let ta = self.and(sel, a);
        let tb = self.and(ns, b);
        self.or(ta, tb)
    }

    /// Word-wide 2:1 mux.
    pub fn mux2_bus(
        &mut self,
        sel: NetId,
        a: &[NetId],
        b: &[NetId],
    ) -> Result<Vec<NetId>, SynthError> {
        Self::check_widths("mux2_bus", a, b)?;
        Ok(a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux2(sel, x, y))
            .collect())
    }

    /// Scan register bank: creates `width` flip-flops with Q nets
    /// returned, D pins wired to `d`, appended to the scan chain in bit
    /// order (the SCAN_REGISTER primitive of the paper's netlists).
    pub fn reg_bank(&mut self, d: &[NetId]) -> Vec<NetId> {
        d.iter()
            .map(|&di| {
                let q = self.push(GateKind::RegQ, vec![]);
                self.nl.regs.push(RegCell { d: di, q });
                q
            })
            .collect()
    }

    /// Ripple-carry adder over the dedicated carry chain (Virtex slice:
    /// the per-bit propagate XOR lands in the LUT, the carry select in
    /// MUXCY). Returns (sum bits, carry out).
    pub fn adder(
        &mut self,
        a: &[NetId],
        b: &[NetId],
        cin: NetId,
    ) -> Result<(Vec<NetId>, NetId), SynthError> {
        Self::check_widths("adder", a, b)?;
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let p = self.xor(ai, bi); // propagate
            let s = self.xor(p, carry);
            // carry_out = p ? carry_in : a  (MUXCY)
            carry = self.carry_mux(p, carry, ai);
            sum.push(s);
        }
        Ok((sum, carry))
    }

    /// Subtractor `a - b` (two's complement): returns (difference,
    /// borrow-free flag = carry out = `a >= b`).
    pub fn subtractor(
        &mut self,
        a: &[NetId],
        b: &[NetId],
    ) -> Result<(Vec<NetId>, NetId), SynthError> {
        Self::check_widths("subtractor", a, b)?;
        let nb: Vec<NetId> = b.iter().map(|&x| self.not(x)).collect();
        let one = self.const1();
        self.adder(a, &nb, one)
    }

    /// Unsigned greater-than comparator: `a > b`.
    pub fn gt(&mut self, a: &[NetId], b: &[NetId]) -> Result<NetId, SynthError> {
        // a > b  ⇔  b - a has a borrow  ⇔  !(b >= a).
        let (_, b_ge_a) = self.subtractor(b, a)?;
        Ok(self.not(b_ge_a))
    }

    /// Unsigned less-than comparator: `a < b`.
    pub fn lt(&mut self, a: &[NetId], b: &[NetId]) -> Result<NetId, SynthError> {
        self.gt(b, a)
    }

    /// Balanced reduction tree (AND/OR): O(log n) depth instead of the
    /// O(n) chain a naive fold produces — load-bearing for wide
    /// comparators on the critical path.
    pub fn reduce_tree(&mut self, nets: &[NetId], op: GateKind) -> Result<NetId, SynthError> {
        if nets.is_empty() {
            return Err(SynthError::EmptyBus {
                context: "reduce_tree",
            });
        }
        if !matches!(op, GateKind::And2 | GateKind::Or2 | GateKind::Xor2) {
            return Err(SynthError::BadReduceOp {
                kind: format!("{op:?}"),
            });
        }
        let mut level: Vec<NetId> = nets.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.push(op, vec![pair[0], pair[1]])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        Ok(level[0])
    }

    /// Equality comparator (XNOR per bit, balanced AND tree).
    pub fn eq(&mut self, a: &[NetId], b: &[NetId]) -> Result<NetId, SynthError> {
        Self::check_widths("eq", a, b)?;
        if a.is_empty() {
            return Err(SynthError::EmptyBus { context: "eq" });
        }
        let bits: Vec<NetId> = a
            .iter()
            .zip(b)
            .map(|(&ai, &bi)| {
                let x = self.xor(ai, bi);
                self.not(x)
            })
            .collect();
        self.reduce_tree(&bits, GateKind::And2)
    }

    /// Incrementer (`a + 1`) over the carry chain.
    pub fn incrementer(&mut self, a: &[NetId]) -> Result<Vec<NetId>, SynthError> {
        let zeros: Vec<NetId> = (0..a.len()).map(|_| self.const0()).collect();
        let one = self.const1();
        Ok(self.adder(a, &zeros, one)?.0)
    }

    /// Binary-to-one-hot decoder (`n` select bits → `2^n` outputs).
    pub fn decoder(&mut self, sel: &[NetId]) -> Result<Vec<NetId>, SynthError> {
        let n = sel.len();
        if n == 0 {
            return Err(SynthError::EmptyBus { context: "decoder" });
        }
        if n > 6 {
            return Err(SynthError::DecoderTooWide { bits: n });
        }
        let inv: Vec<NetId> = sel.iter().map(|&s| self.not(s)).collect();
        Ok((0..1usize << n)
            .map(|v| {
                let mut acc: Option<NetId> = None;
                for b in 0..n {
                    let lit = if (v >> b) & 1 == 1 { sel[b] } else { inv[b] };
                    acc = Some(match acc {
                        None => lit,
                        Some(p) => self.and(p, lit),
                    });
                }
                acc.expect("decoder select width checked nonzero above")
            })
            .collect())
    }

    /// Thermometer mask generator for the crossover operator: output bit
    /// `i` is 1 iff `i < cut` (the §III-B.3 mask with ones in positions
    /// 0..cut−1). `cut` is a 4-bit bus; output is 16 bits. Built as a
    /// constant comparator per bit (shallow) rather than a suffix-OR
    /// chain (16 levels deep).
    pub fn thermometer16(&mut self, cut: &[NetId]) -> Result<Vec<NetId>, SynthError> {
        Self::check_width_is("thermometer16 cut", cut, 4)?;
        (0..16u8)
            .map(|i| {
                // cut > i with i constant.
                let konst: Vec<NetId> = (0..4)
                    .map(|b| {
                        if (i >> b) & 1 == 1 {
                            self.const1()
                        } else {
                            self.const0()
                        }
                    })
                    .collect();
                self.gt(cut, &konst)
            })
            .collect()
    }

    /// The crossover network (Fig. 3): given two 16-bit parents and the
    /// 4-bit cut, produce both offspring via AND/inverted-AND/OR.
    pub fn crossover16(
        &mut self,
        p1: &[NetId],
        p2: &[NetId],
        cut: &[NetId],
    ) -> Result<(Vec<NetId>, Vec<NetId>), SynthError> {
        Self::check_width_is("crossover16 parent1", p1, 16)?;
        Self::check_width_is("crossover16 parent2", p2, 16)?;
        let mask = self.thermometer16(cut)?;
        let mut o1 = Vec::with_capacity(16);
        let mut o2 = Vec::with_capacity(16);
        for i in 0..16 {
            let nm = self.not(mask[i]);
            let a1 = self.and(p1[i], mask[i]);
            let b1 = self.and(p2[i], nm);
            o1.push(self.or(a1, b1));
            let a2 = self.and(p1[i], nm);
            let b2 = self.and(p2[i], mask[i]);
            o2.push(self.or(a2, b2));
        }
        Ok((o1, o2))
    }

    /// The mutation network: one-hot decode the 4-bit point and XOR.
    pub fn mutate16(&mut self, chrom: &[NetId], point: &[NetId]) -> Result<Vec<NetId>, SynthError> {
        Self::check_width_is("mutate16 chromosome", chrom, 16)?;
        let onehot = self.decoder(point)?;
        Ok(chrom
            .iter()
            .zip(&onehot)
            .map(|(&c, &o)| self.xor(c, o))
            .collect())
    }

    /// Unsigned array multiplier `a × b` (full product width). The AUDI
    /// flow allocates this as a functional unit for the selection
    /// threshold scaling (`fit_sum · rn >> 16`); the controller gives it
    /// four clock cycles (`SelMulWait`), which static timing honors as a
    /// multicycle path. Each row's addition rides the dedicated carry
    /// chain full-width, so the combinational depth is rows × one carry
    /// chain, not a quadratic gate ripple.
    pub fn multiplier(&mut self, a: &[NetId], b: &[NetId]) -> Result<Vec<NetId>, SynthError> {
        let zero = self.const0();
        let mut acc: Vec<NetId> = vec![zero; a.len() + b.len()];
        for (j, &bj) in b.iter().enumerate() {
            // Partial product: a AND b[j], shifted by j, zero-extended
            // over the remaining accumulator width.
            let mut pp: Vec<NetId> = a.iter().map(|&ai| self.and(ai, bj)).collect();
            pp.resize(acc.len() - j, zero);
            let slice: Vec<NetId> = acc[j..].to_vec();
            let (sum, _cout) = self.adder(&slice, &pp, zero)?;
            acc[j..].copy_from_slice(&sum);
        }
        Ok(acc)
    }

    /// Current gate count (for inventory reporting).
    pub fn gate_count(&self) -> usize {
        self.nl.gates.len()
    }

    /// Current register count (scan-chain position bookkeeping).
    pub fn reg_count(&self) -> usize {
        self.nl.regs.len()
    }

    /// Re-bind the D pins of previously created registers (identified by
    /// their Q nets). Used by the FSM synthesizer, which must allocate
    /// the one-hot Q nets before the next-state logic that feeds them —
    /// the netlist analog of a VHDL signal declared before its driving
    /// process.
    pub fn patch_reg_d(&mut self, q_nets: &[NetId], d_nets: &[NetId]) -> Result<(), SynthError> {
        Self::check_widths("patch_reg_d", q_nets, d_nets)?;
        for (&q, &d) in q_nets.iter().zip(d_nets) {
            let cell = self
                .nl
                .regs
                .iter_mut()
                .find(|r| r.q == q)
                .ok_or(SynthError::UnknownRegQ { q })?;
            cell.d = d;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::netlist::{bus_to_u64, u64_to_bus};
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Harness: build a 2-input combinational block and exercise it.
    fn eval2(
        widths: (usize, usize),
        build: impl Fn(&mut Builder, &[NetId], &[NetId]) -> Vec<NetId>,
        a: u64,
        b: u64,
    ) -> u64 {
        let mut bld = Builder::new();
        let ia = bld.input("a", widths.0);
        let ib = bld.input("b", widths.1);
        let out = build(&mut bld, &ia, &ib);
        bld.output("y", &out);
        let nl = bld.finish();
        let mut inp = HashMap::new();
        u64_to_bus(nl.input_bus("a").unwrap(), a, &mut inp);
        u64_to_bus(nl.input_bus("b").unwrap(), b, &mut inp);
        let vals = nl.eval_comb(&inp, &HashMap::new());
        bus_to_u64(nl.output_bus("y").unwrap(), &vals)
    }

    proptest! {
        #[test]
        fn adder_equivalence(a in 0u64..1 << 24, b in 0u64..1 << 24) {
            let sum = eval2((24, 24), |bld, x, y| {
                let zero = bld.const0();
                let (s, cout) = bld.adder(x, y, zero).unwrap();
                let mut out = s;
                out.push(cout);
                out
            }, a, b);
            prop_assert_eq!(sum, a + b);
        }

        #[test]
        fn subtractor_equivalence(a in 0u64..1 << 16, b in 0u64..1 << 16) {
            let out = eval2((16, 16), |bld, x, y| {
                let (d, ge) = bld.subtractor(x, y).unwrap();
                let mut o = d;
                o.push(ge);
                o
            }, a, b);
            let diff = out & 0xFFFF;
            let ge = out >> 16;
            prop_assert_eq!(diff, a.wrapping_sub(b) & 0xFFFF);
            prop_assert_eq!(ge == 1, a >= b);
        }

        #[test]
        fn comparator_equivalence(a in 0u64..1 << 24, b in 0u64..1 << 24) {
            let gt = eval2((24, 24), |bld, x, y| vec![bld.gt(x, y).unwrap()], a, b);
            prop_assert_eq!(gt == 1, a > b);
            let eq = eval2((24, 24), |bld, x, y| vec![bld.eq(x, y).unwrap()], a, b);
            prop_assert_eq!(eq == 1, a == b);
        }

        #[test]
        fn multiplier_equivalence(a in 0u64..1 << 12, b in 0u64..1 << 8) {
            let p = eval2((12, 8), |bld, x, y| bld.multiplier(x, y).unwrap(), a, b);
            prop_assert_eq!(p, a * b);
        }

        #[test]
        fn crossover_network_matches_ops(p1 in any::<u16>(), p2 in any::<u16>(), cut in 0u64..16) {
            let mut bld = Builder::new();
            let ia = bld.input("a", 16);
            let ib = bld.input("b", 16);
            let ic = bld.input("cut", 4);
            let (o1, o2) = bld.crossover16(&ia, &ib, &ic).unwrap();
            bld.output("o1", &o1);
            bld.output("o2", &o2);
            let nl = bld.finish();
            let mut inp = HashMap::new();
            u64_to_bus(nl.input_bus("a").unwrap(), p1 as u64, &mut inp);
            u64_to_bus(nl.input_bus("b").unwrap(), p2 as u64, &mut inp);
            u64_to_bus(nl.input_bus("cut").unwrap(), cut, &mut inp);
            let vals = nl.eval_comb(&inp, &HashMap::new());
            let g1 = bus_to_u64(nl.output_bus("o1").unwrap(), &vals) as u16;
            let g2 = bus_to_u64(nl.output_bus("o2").unwrap(), &vals) as u16;
            let (r1, r2) = ga_core_ops_crossover(p1, p2, cut as u8);
            prop_assert_eq!(g1, r1);
            prop_assert_eq!(g2, r2);
        }

        #[test]
        fn mutate_network_flips_one_bit(c in any::<u16>(), point in 0u64..16) {
            let mut bld = Builder::new();
            let ic = bld.input("c", 16);
            let ip = bld.input("p", 4);
            let o = bld.mutate16(&ic, &ip).unwrap();
            bld.output("o", &o);
            let nl = bld.finish();
            let mut inp = HashMap::new();
            u64_to_bus(nl.input_bus("c").unwrap(), c as u64, &mut inp);
            u64_to_bus(nl.input_bus("p").unwrap(), point, &mut inp);
            let vals = nl.eval_comb(&inp, &HashMap::new());
            let out = bus_to_u64(nl.output_bus("o").unwrap(), &vals) as u16;
            prop_assert_eq!(out, c ^ (1 << point));
        }
    }

    /// Reference single-point crossover (duplicated from ga-core to keep
    /// this crate dependency-free; the bit semantics are asserted
    /// identical here).
    fn ga_core_ops_crossover(p1: u16, p2: u16, cut: u8) -> (u16, u16) {
        let m = ((1u32 << cut) - 1) as u16;
        ((p1 & m) | (p2 & !m), (p1 & !m) | (p2 & m))
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut bld = Builder::new();
        let sel = bld.input("s", 4);
        let out = bld.decoder(&sel).unwrap();
        bld.output("o", &out);
        let nl = bld.finish();
        for v in 0..16u64 {
            let mut inp = HashMap::new();
            u64_to_bus(nl.input_bus("s").unwrap(), v, &mut inp);
            let vals = nl.eval_comb(&inp, &HashMap::new());
            let out = bus_to_u64(nl.output_bus("o").unwrap(), &vals);
            assert_eq!(out, 1 << v);
        }
    }

    #[test]
    fn thermometer_matches_mask_semantics() {
        let mut bld = Builder::new();
        let cut = bld.input("cut", 4);
        let mask = bld.thermometer16(&cut).unwrap();
        bld.output("m", &mask);
        let nl = bld.finish();
        for c in 0..16u64 {
            let mut inp = HashMap::new();
            u64_to_bus(nl.input_bus("cut").unwrap(), c, &mut inp);
            let vals = nl.eval_comb(&inp, &HashMap::new());
            let m = bus_to_u64(nl.output_bus("m").unwrap(), &vals) as u16;
            assert_eq!(m, ((1u32 << c) - 1) as u16, "cut={c}");
        }
    }

    #[test]
    fn reg_bank_joins_scan_chain_in_order() {
        let mut bld = Builder::new();
        let d = bld.input("d", 3);
        let q = bld.reg_bank(&d);
        bld.output("q", &q);
        let nl = bld.finish();
        assert_eq!(nl.regs.len(), 3);
        assert!(nl.validate().is_ok());
        for (i, r) in nl.regs.iter().enumerate() {
            assert_eq!(r.d, nl.input_bus("d").unwrap()[i]);
        }
    }

    #[test]
    fn mux2_bus_selects_whole_word() {
        let mut bld = Builder::new();
        let a = bld.input("a", 8);
        let b = bld.input("b", 8);
        let s = bld.input("s", 1);
        let y = bld.mux2_bus(s[0], &a, &b).unwrap();
        bld.output("y", &y);
        let nl = bld.finish();
        for (sv, expect) in [(1u64, 0xAAu64), (0, 0x55)] {
            let mut inp = HashMap::new();
            u64_to_bus(nl.input_bus("a").unwrap(), 0xAA, &mut inp);
            u64_to_bus(nl.input_bus("b").unwrap(), 0x55, &mut inp);
            u64_to_bus(nl.input_bus("s").unwrap(), sv, &mut inp);
            let vals = nl.eval_comb(&inp, &HashMap::new());
            assert_eq!(bus_to_u64(nl.output_bus("y").unwrap(), &vals), expect);
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut bld = Builder::new();
        let a = bld.input("a", 4);
        let b = bld.input("b", 5);
        assert!(matches!(
            bld.adder(&a, &b, 0).unwrap_err(),
            SynthError::WidthMismatch {
                context: "adder",
                left: 4,
                right: 5
            }
        ));
        assert!(matches!(
            bld.reduce_tree(&[], GateKind::And2).unwrap_err(),
            SynthError::EmptyBus { .. }
        ));
        assert!(matches!(
            bld.reduce_tree(&a, GateKind::CarryMux).unwrap_err(),
            SynthError::BadReduceOp { .. }
        ));
        let wide = bld.input("w", 7);
        assert!(matches!(
            bld.decoder(&wide).unwrap_err(),
            SynthError::DecoderTooWide { bits: 7 }
        ));
        assert!(matches!(
            bld.patch_reg_d(&[a[0]], &[a[1]]).unwrap_err(),
            SynthError::UnknownRegQ { .. }
        ));
    }
}
