//! Levelized static timing analysis.
//!
//! Delay model calibrated to Virtex-II Pro speed grade -7 class numbers:
//! LUT4 ≈ 0.44 ns plus ≈ 0.8 ns average net delay per logic level,
//! MUXCY ≈ 0.06 ns per bit on the dedicated chain, 0.4 ns clock-to-Q
//! and 0.4 ns setup. The engine computes per-net arrival times over the
//! topological order and reports the critical register-to-register (or
//! input-to-register) path — the number the paper turns into its
//! "50 MHz" clock row in Table VI.

use crate::netlist::{GateKind, Netlist};

/// Per-primitive delay model (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// LUT4 propagation delay.
    pub lut: f64,
    /// Average routing delay per logic level.
    pub net: f64,
    /// MUXCY delay per carry bit.
    pub carry: f64,
    /// Register clock-to-Q.
    pub clk_to_q: f64,
    /// Register setup time.
    pub setup: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel {
            lut: 0.44,
            net: 0.80,
            carry: 0.06,
            clk_to_q: 0.40,
            setup: 0.40,
        }
    }
}

/// Timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Critical path delay in ns (including clk-to-Q and setup).
    pub critical_ns: f64,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Depth (logic levels) of the critical path.
    pub levels: u32,
}

/// Analyze a netlist under a delay model.
pub fn analyze(nl: &Netlist, model: &DelayModel) -> TimingReport {
    analyze_multicycle(nl, model, &[])
}

/// Post-mapping analysis: LUT delay is charged only at cluster roots
/// (absorbed gates are free inside their LUT), the way real STA sees the
/// mapped network.
pub fn analyze_mapped(
    nl: &Netlist,
    model: &DelayModel,
    multicycle: &[(crate::netlist::NetId, u32)],
) -> TimingReport {
    let (_, roots) = crate::mapper::map_with_roots(nl);
    analyze_inner(nl, model, multicycle, Some(&roots))
}

/// Analyze with multicycle path constraints: each `(reg_d_net, n)` entry
/// lets the path ending at that register D pin take `n` clock cycles
/// (the XDC `set_multicycle_path` of the real flow — here used for the
/// selection multiplier, which the controller gives four cycles).
pub fn analyze_multicycle(
    nl: &Netlist,
    model: &DelayModel,
    multicycle: &[(crate::netlist::NetId, u32)],
) -> TimingReport {
    analyze_inner(nl, model, multicycle, None)
}

fn analyze_inner(
    nl: &Netlist,
    model: &DelayModel,
    multicycle: &[(crate::netlist::NetId, u32)],
    lut_roots: Option<&[bool]>,
) -> TimingReport {
    let order = nl.validate().expect("netlist must validate before timing");
    let n = nl.gates.len();
    let mut arrival = vec![0.0f64; n];
    let mut depth = vec![0u32; n];

    for &id in &order {
        let g = &nl.gates[id as usize];
        let (own_delay, own_level) = match g.kind {
            GateKind::Const0 | GateKind::Const1 | GateKind::Input => (0.0, 0),
            GateKind::RegQ => (model.clk_to_q, 0),
            GateKind::Buf => (0.0, 0),
            GateKind::CarryMux => (model.carry, 0),
            _ => match lut_roots {
                // Post-mapping: only cluster roots cost a LUT + net hop;
                // absorbed gates evaluate inside the root's LUT.
                Some(roots) if !roots[id as usize] => (0.0, 0),
                _ => (model.lut + model.net, 1),
            },
        };
        let (in_arr, in_depth) = g
            .inputs
            .iter()
            .map(|&i| (arrival[i as usize], depth[i as usize]))
            .fold((0.0f64, 0u32), |(a, d), (ia, idep)| {
                (a.max(ia), d.max(idep))
            });
        arrival[id as usize] = in_arr + own_delay;
        depth[id as usize] = in_depth + own_level;
    }

    // Critical path: the worst (per-cycle-budget normalized) arrival at
    // any register D pin or primary output, plus setup.
    let factor_of = |net: crate::netlist::NetId| -> f64 {
        multicycle
            .iter()
            .find(|&&(n, _)| n == net)
            .map(|&(_, k)| k.max(1) as f64)
            .unwrap_or(1.0)
    };
    let mut worst = 0.0f64;
    let mut worst_depth = 0u32;
    for r in &nl.regs {
        let eff = (arrival[r.d as usize] + model.setup) / factor_of(r.d);
        if eff > worst {
            worst = eff;
            worst_depth = depth[r.d as usize];
        }
    }
    for (_, bus) in &nl.outputs {
        for &b in bus {
            let eff = arrival[b as usize] + model.setup;
            if eff > worst {
                worst = eff;
                worst_depth = depth[b as usize];
            }
        }
    }
    let critical = worst;
    TimingReport {
        critical_ns: critical,
        fmax_mhz: if critical > 0.0 {
            1000.0 / critical
        } else {
            f64::INFINITY
        },
        levels: worst_depth,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::builder::Builder;

    #[test]
    fn single_gate_path() {
        let mut b = Builder::new();
        let i = b.input("i", 2);
        let y = b.and(i[0], i[1]);
        let q = b.reg_bank(&[y]);
        b.output("q", &q);
        let r = analyze(&b.finish(), &DelayModel::default());
        // input → LUT+net → setup.
        assert!((r.critical_ns - (0.44 + 0.80 + 0.40)).abs() < 1e-9);
        assert_eq!(r.levels, 1);
    }

    #[test]
    fn chain_depth_adds_up() {
        let mut b = Builder::new();
        let i = b.input("i", 2);
        let mut y = b.and(i[0], i[1]);
        for _ in 0..9 {
            y = b.xor(y, i[0]);
        }
        let q = b.reg_bank(&[y]);
        b.output("q", &q);
        let r = analyze(&b.finish(), &DelayModel::default());
        assert_eq!(r.levels, 10);
        assert!((r.critical_ns - (10.0 * 1.24 + 0.40)).abs() < 1e-9);
    }

    #[test]
    fn carry_chain_is_much_faster_than_lut_ripple() {
        // A 24-bit adder's carry path: 24 MUXCY ≈ 1.4 ns, versus 24 LUT
        // levels ≈ 30 ns if built from plain gates.
        let mut b = Builder::new();
        let x = b.input("x", 24);
        let y = b.input("y", 24);
        let zero = b.const0();
        let (s, _c) = b.adder(&x, &y, zero).unwrap();
        let q = b.reg_bank(&s);
        b.output("q", &q);
        let r = analyze(&b.finish(), &DelayModel::default());
        assert!(
            r.critical_ns < 6.0,
            "24-bit carry-chain adder must close well under 20 ns: {} ns",
            r.critical_ns
        );
    }

    #[test]
    fn reg_to_reg_includes_clk_to_q() {
        let mut b = Builder::new();
        let zero = b.const0();
        let q1 = b.reg_bank(&[zero]);
        let inv = b.not(q1[0]);
        let q2 = b.reg_bank(&[inv]);
        b.output("q", &q2);
        let r = analyze(&b.finish(), &DelayModel::default());
        assert!((r.critical_ns - (0.40 + 1.24 + 0.40)).abs() < 1e-9);
    }

    #[test]
    fn fmax_inverts_critical_path() {
        let mut b = Builder::new();
        let i = b.input("i", 2);
        let y = b.or(i[0], i[1]);
        let q = b.reg_bank(&[y]);
        b.output("q", &q);
        let r = analyze(&b.finish(), &DelayModel::default());
        assert!((r.fmax_mhz - 1000.0 / r.critical_ns).abs() < 1e-9);
    }
}
