//! Property-based tests of the simulation kernel against abstract
//! models — the kernel underlies every result in the repo, so its
//! semantics get the heaviest randomized scrutiny.

use std::collections::HashMap;

use hwsim::{AckSlave, Reg, ReqMaster, SpRam};
use proptest::prelude::*;

/// Port operations for the RAM model check.
#[derive(Debug, Clone)]
enum RamOp {
    Write(u8, u32),
    Read(u8),
    Idle,
}

fn ram_op() -> impl Strategy<Value = RamOp> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(a, d)| RamOp::Write(a, d)),
        any::<u8>().prop_map(RamOp::Read),
        Just(RamOp::Idle),
    ]
}

proptest! {
    /// The single-port RAM agrees with a HashMap reference model under
    /// arbitrary port schedules, including the one-cycle read latency
    /// and the NO_CHANGE write behaviour.
    #[test]
    fn sp_ram_matches_reference_model(ops in prop::collection::vec(ram_op(), 1..200)) {
        let mut ram = SpRam::new(256);
        let mut model: HashMap<u8, u32> = HashMap::new();
        // (expected value, valid) for the registered read port.
        let mut pending_read: Option<u32> = None;
        for op in ops {
            match op {
                RamOp::Write(a, d) => {
                    ram.eval(a, d, true);
                    model.insert(a, d);
                    // NO_CHANGE: the read register holds its value.
                }
                RamOp::Read(a) => {
                    ram.eval(a, 0, false);
                    pending_read = Some(*model.get(&a).unwrap_or(&0));
                }
                RamOp::Idle => {
                    // No port activity this cycle: dout holds. Model by
                    // issuing a read of the same pending value? The RAM
                    // has no idle input; emulate idle as a read of
                    // address 0 with the model updated accordingly.
                    ram.eval(0, 0, false);
                    pending_read = Some(*model.get(&0).unwrap_or(&0));
                }
            }
            ram.commit();
            if let Some(expect) = pending_read {
                prop_assert_eq!(ram.dout(), expect);
            }
        }
    }

    /// A two-phase register never exposes a staged value before commit,
    /// and always exposes exactly the last staged value after.
    #[test]
    fn reg_two_phase_semantics(writes in prop::collection::vec(any::<u32>(), 1..50)) {
        let mut r = Reg::new(0u32);
        for chunk in writes.chunks(3) {
            let before = r.get();
            for &w in chunk {
                r.set(w);
                prop_assert_eq!(r.get(), before, "staged value leaked");
            }
            r.commit();
            prop_assert_eq!(r.get(), *chunk.last().unwrap());
        }
    }

    /// Master/slave handshake delivers exactly one payload per
    /// transaction under arbitrary slave response latencies.
    #[test]
    fn handshake_delivers_exactly_once(latencies in prop::collection::vec(0u8..12, 1..20)) {
        let mut master = ReqMaster::default();
        let mut slave = AckSlave::default();
        master.reset();
        slave.reset();
        // The slave-side responder: after accepting, waits `latency`
        // cycles, then asserts valid with payload+1 until req falls.
        for (txn, &latency) in latencies.iter().enumerate() {
            let payload = txn as u32 * 31 + 7;
            master.start();
            master.commit();
            let mut countdown: Option<u8> = None;
            let mut accepted: Option<u32> = None;
            let mut responses = 0u32;
            let mut valid = false;
            let mut value = 0u32;
            for _cycle in 0..100 {
                // Slave side.
                if let Some(p) = slave.eval(master.req(), payload) {
                    accepted = Some(p);
                    countdown = Some(latency);
                }
                if let Some(c) = countdown {
                    if c == 0 {
                        valid = true;
                        value = accepted.unwrap() + 1;
                        countdown = None;
                    } else {
                        countdown = Some(c - 1);
                    }
                }
                if !master.req() {
                    valid = false;
                }
                // Master side.
                if let Some(r) = master.eval(valid, value) {
                    prop_assert_eq!(r, payload + 1);
                    responses += 1;
                }
                master.commit();
                slave.commit();
                if master.is_idle() && responses > 0 && !valid {
                    break;
                }
            }
            prop_assert_eq!(responses, 1, "txn {} delivered {} times", txn, responses);
        }
    }
}
