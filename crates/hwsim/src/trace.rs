//! Per-cycle / per-event signal tracing.
//!
//! The paper instrumented the FPGA with Chipscope Pro cores to record the
//! "best fitness" and "sum of fitness" values for each generation
//! (Figs. 13–16 are plotted from those captures). [`Trace`] plays the
//! same role for the simulation: named series of (time, value) samples
//! with CSV export for the figure-generation binaries.

use std::collections::HashMap;
use std::fmt::Write as _;

/// One named sample series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSeries {
    /// (sample time — cycle number or generation index, value) pairs in
    /// non-decreasing time order.
    pub samples: Vec<(u64, u64)>,
}

impl TraceSeries {
    /// Append a sample; times must be non-decreasing.
    pub fn push(&mut self, t: u64, v: u64) {
        if let Some(&(last, _)) = self.samples.last() {
            debug_assert!(t >= last, "trace samples must be time-ordered");
        }
        self.samples.push((t, v));
    }

    /// Values only, in time order.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.samples.iter().map(|&(_, v)| v)
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<u64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Maximum recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        self.values().max()
    }
}

/// A set of named series keyed by signal name.
///
/// Recording is the hot path — the scoreboard pushes a sample per
/// traced signal per generation — so series are stored in a flat
/// vector with a name→slot index map: a repeated [`Trace::record`] is
/// one hash lookup and a `Vec` push, with no allocation and no ordered
/// walk. Name ordering (for [`Trace::iter`] and [`Trace::to_csv`]) is
/// reconstructed only at read time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Series in first-recorded order (the stable slot a name maps to).
    series: Vec<(String, TraceSeries)>,
    /// Signal name → slot in `series`.
    index: HashMap<String, usize>,
}

impl Trace {
    /// New, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` for `name` at time `t` (creating the series on
    /// first use). O(1) per repeated record.
    pub fn record(&mut self, name: &str, t: u64, value: u64) {
        let slot = match self.index.get(name) {
            Some(&slot) => slot,
            None => {
                let slot = self.series.len();
                self.series.push((name.to_owned(), TraceSeries::default()));
                self.index.insert(name.to_owned(), slot);
                slot
            }
        };
        self.series[slot].1.push(t, value);
    }

    /// Look up a series by name.
    pub fn series(&self, name: &str) -> Option<&TraceSeries> {
        self.index.get(name).map(|&slot| &self.series[slot].1)
    }

    /// Slots sorted by series name (the presentation order every
    /// reader uses, matching the former sorted-map layout).
    fn slots_by_name(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = (0..self.series.len()).collect();
        slots.sort_by(|&a, &b| self.series[a].0.cmp(&self.series[b].0));
        slots
    }

    /// Iterate over all (name, series) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TraceSeries)> {
        self.slots_by_name()
            .into_iter()
            .map(|slot| (self.series[slot].0.as_str(), &self.series[slot].1))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series have been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Render the trace as CSV with one row per distinct sample time and
    /// one column per series (empty cell when a series has no sample at
    /// that time), columns in name order. This is the format consumed by
    /// the fig* binaries.
    pub fn to_csv(&self) -> String {
        let slots = self.slots_by_name();
        let mut times: Vec<u64> = self
            .series
            .iter()
            .flat_map(|(_, s)| s.samples.iter().map(|&(t, _)| t))
            .collect();
        times.sort_unstable();
        times.dedup();

        let mut out = String::new();
        out.push_str("time");
        for &slot in &slots {
            let _ = write!(out, ",{}", self.series[slot].0);
        }
        out.push('\n');

        // Per-series cursor for a single linear merge pass.
        let mut cursors: Vec<usize> = vec![0; slots.len()];
        for &t in &times {
            let _ = write!(out, "{t}");
            for (ci, &slot) in slots.iter().enumerate() {
                let s = &self.series[slot].1;
                let cur = &mut cursors[ci];
                let mut cell: Option<u64> = None;
                while *cur < s.samples.len() && s.samples[*cur].0 == t {
                    cell = Some(s.samples[*cur].1);
                    *cur += 1;
                }
                match cell {
                    Some(v) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        t.record("best", 0, 100);
        t.record("best", 1, 120);
        t.record("avg", 0, 50);
        assert_eq!(t.len(), 2);
        assert_eq!(t.series("best").unwrap().last(), Some(120));
        assert_eq!(t.series("best").unwrap().max(), Some(120));
        assert_eq!(t.series("avg").unwrap().samples.len(), 1);
        assert!(t.series("nope").is_none());
    }

    #[test]
    fn csv_merges_on_time_axis() {
        let mut t = Trace::new();
        t.record("a", 0, 1);
        t.record("a", 2, 3);
        t.record("b", 0, 10);
        t.record("b", 1, 11);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines[1], "0,1,10");
        assert_eq!(lines[2], "1,,11");
        assert_eq!(lines[3], "2,3,");
    }

    #[test]
    fn duplicate_time_keeps_last_sample_in_csv() {
        let mut t = Trace::new();
        t.record("x", 5, 1);
        t.record("x", 5, 2);
        let csv = t.to_csv();
        assert!(csv.lines().any(|l| l == "5,2"));
    }

    #[test]
    fn csv_is_invariant_under_insertion_order() {
        // The indexed layout stores series in first-recorded order;
        // CSV (and iter) must still come out in name order, exactly as
        // the old sorted-map representation produced.
        let mut fwd = Trace::new();
        fwd.record("avg", 0, 50);
        fwd.record("best", 0, 100);
        fwd.record("best", 1, 120);

        let mut rev = Trace::new();
        rev.record("best", 0, 100);
        rev.record("avg", 0, 50);
        rev.record("best", 1, 120);

        assert_eq!(fwd.to_csv(), rev.to_csv());
        assert_eq!(rev.to_csv().lines().next(), Some("time,avg,best"));
        let names: Vec<&str> = rev.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["avg", "best"]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn out_of_order_samples_panic_in_debug() {
        let mut s = TraceSeries::default();
        s.push(5, 0);
        s.push(4, 0);
    }
}
