//! Per-cycle / per-event signal tracing.
//!
//! The paper instrumented the FPGA with Chipscope Pro cores to record the
//! "best fitness" and "sum of fitness" values for each generation
//! (Figs. 13–16 are plotted from those captures). [`Trace`] plays the
//! same role for the simulation: named series of (time, value) samples
//! with CSV export for the figure-generation binaries.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One named sample series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSeries {
    /// (sample time — cycle number or generation index, value) pairs in
    /// non-decreasing time order.
    pub samples: Vec<(u64, u64)>,
}

impl TraceSeries {
    /// Append a sample; times must be non-decreasing.
    pub fn push(&mut self, t: u64, v: u64) {
        if let Some(&(last, _)) = self.samples.last() {
            debug_assert!(t >= last, "trace samples must be time-ordered");
        }
        self.samples.push((t, v));
    }

    /// Values only, in time order.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.samples.iter().map(|&(_, v)| v)
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<u64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Maximum recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        self.values().max()
    }
}

/// A set of named series keyed by signal name.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    series: BTreeMap<String, TraceSeries>,
}

impl Trace {
    /// New, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` for `name` at time `t` (creating the series on
    /// first use).
    pub fn record(&mut self, name: &str, t: u64, value: u64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .push(t, value);
    }

    /// Look up a series by name.
    pub fn series(&self, name: &str) -> Option<&TraceSeries> {
        self.series.get(name)
    }

    /// Iterate over all (name, series) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TraceSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series have been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Render the trace as CSV with one row per distinct sample time and
    /// one column per series (empty cell when a series has no sample at
    /// that time). This is the format consumed by the fig* binaries.
    pub fn to_csv(&self) -> String {
        let mut times: Vec<u64> = self
            .series
            .values()
            .flat_map(|s| s.samples.iter().map(|&(t, _)| t))
            .collect();
        times.sort_unstable();
        times.dedup();

        let mut out = String::new();
        out.push_str("time");
        for name in self.series.keys() {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');

        // Per-series cursor for a single linear merge pass.
        let mut cursors: Vec<usize> = vec![0; self.series.len()];
        for &t in &times {
            let _ = write!(out, "{t}");
            for (ci, s) in self.series.values().enumerate() {
                let cur = &mut cursors[ci];
                let mut cell: Option<u64> = None;
                while *cur < s.samples.len() && s.samples[*cur].0 == t {
                    cell = Some(s.samples[*cur].1);
                    *cur += 1;
                }
                match cell {
                    Some(v) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        t.record("best", 0, 100);
        t.record("best", 1, 120);
        t.record("avg", 0, 50);
        assert_eq!(t.len(), 2);
        assert_eq!(t.series("best").unwrap().last(), Some(120));
        assert_eq!(t.series("best").unwrap().max(), Some(120));
        assert_eq!(t.series("avg").unwrap().samples.len(), 1);
        assert!(t.series("nope").is_none());
    }

    #[test]
    fn csv_merges_on_time_axis() {
        let mut t = Trace::new();
        t.record("a", 0, 1);
        t.record("a", 2, 3);
        t.record("b", 0, 10);
        t.record("b", 1, 11);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines[1], "0,1,10");
        assert_eq!(lines[2], "1,,11");
        assert_eq!(lines[3], "2,3,");
    }

    #[test]
    fn duplicate_time_keeps_last_sample_in_csv() {
        let mut t = Trace::new();
        t.record("x", 5, 1);
        t.record("x", 5, 2);
        let csv = t.to_csv();
        assert!(csv.lines().any(|l| l == "5,2"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn out_of_order_samples_panic_in_debug() {
        let mut s = TraceSeries::default();
        s.push(5, 0);
        s.push(4, 0);
    }
}
