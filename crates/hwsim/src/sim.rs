//! The scheduler: cycle counting, reset sequencing, and run-to-condition.
//!
//! A "system" here is any closed collection of [`Clocked`] modules whose
//! wiring is expressed in plain Rust by the owner (the idiom used by the
//! GA system model: sample every module's registered outputs, hand each
//! module its input bundle, then commit everything). [`Sim`] only owns
//! the clock: it counts cycles, applies reset, and loops `eval`/`commit`
//! until a caller-supplied condition holds or a watchdog fires.

use std::fmt;
use std::time::{Duration, Instant};

/// A synchronous module driven by a single clock.
///
/// The evaluation phase is module-specific (each module exposes its own
/// `eval(...)` taking a typed input bundle), so the trait only captures
/// the parts the scheduler needs: reset and the commit edge.
pub trait Clocked {
    /// Synchronous reset: drive every internal register to its power-on
    /// value in both phases.
    fn reset(&mut self);

    /// Latch every internal register (the rising clock edge).
    fn commit(&mut self);
}

/// Errors from [`Sim::run_until`] and deadline-aware run loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The watchdog expired before the condition held.
    Timeout {
        /// Number of cycles that were run before giving up.
        cycles: u64,
    },
    /// A wall-clock [`Deadline`] expired before the condition held —
    /// the *host* ran out of time, not the simulated hardware.
    DeadlineExceeded {
        /// Number of cycles that were run before the deadline fired.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles } => {
                write!(f, "simulation watchdog expired after {cycles} cycles")
            }
            SimError::DeadlineExceeded { cycles } => {
                write!(f, "wall-clock deadline expired after {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A wall-clock budget with amortized checking, for bounding how long a
/// *host* is allowed to spend inside a simulation loop (as opposed to
/// the cycle-count watchdog, which bounds *simulated* time).
///
/// Reading the OS clock every simulated cycle would dominate a tight
/// run loop, so [`Deadline::expired`] only consults [`Instant`] once
/// per skip window. The window is *adaptive*: each clock read measures
/// the cost of the calls since the previous read and grants a skip that
/// cannot consume more than half of the remaining budget, growing at
/// most geometrically from zero so an unmeasured estimate is never
/// trusted with a large window. The first call always checks, which
/// makes a zero-millisecond deadline fire deterministically, and once
/// expired the verdict is sticky — every later call returns `true`.
#[derive(Debug, Clone)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
    /// Calls left to skip before the next clock read.
    countdown: u32,
    /// Skip window granted at the last clock read (geometric-growth cap).
    last_skip: u32,
    /// `expired()` calls answered since the last clock read.
    calls_since_check: u32,
    /// `start.elapsed()` observed at the last clock read.
    last_elapsed: Duration,
    /// Latched on the first expired verdict; never cleared.
    tripped: bool,
}

impl Deadline {
    /// Upper bound on calls between clock reads, however cheap the
    /// loop body measures.
    const MAX_STRIDE: u32 = 1024;

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            start: Instant::now(),
            budget,
            countdown: 0,
            last_skip: 0,
            calls_since_check: 0,
            last_elapsed: Duration::ZERO,
            tripped: false,
        }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Self::after(Duration::from_millis(ms))
    }

    /// Amortized check: consults the real clock on the first call and
    /// then once per adaptive skip window; in between it returns
    /// `false`. After the first `true` the deadline is latched and
    /// every subsequent call returns `true` without touching the clock.
    #[inline]
    pub fn expired(&mut self) -> bool {
        if self.tripped {
            return true;
        }
        if self.countdown > 0 {
            self.countdown -= 1;
            self.calls_since_check += 1;
            return false;
        }
        let elapsed = self.start.elapsed();
        if elapsed >= self.budget {
            self.tripped = true;
            return true;
        }
        // Size the next window from the measured per-call cost: skip at
        // most the number of calls that fit half the remaining budget,
        // at most double-plus-one the previous window, never more than
        // MAX_STRIDE. A sleep-heavy loop therefore re-checks within
        // ~half of what remains instead of overshooting by a fixed
        // 1024-call stride.
        let calls = u128::from(self.calls_since_check) + 1;
        let per_call_ns = ((elapsed - self.last_elapsed).as_nanos() / calls).max(1);
        let fits = (self.budget - elapsed).as_nanos() / 2 / per_call_ns;
        let cap = u128::from(self.last_skip) * 2 + 1;
        let skip = fits.min(cap).min(u128::from(Self::MAX_STRIDE)) as u32;
        self.countdown = skip;
        self.last_skip = skip;
        self.calls_since_check = 0;
        self.last_elapsed = elapsed;
        false
    }

    /// Immediate (non-amortized) check against the real clock (or the
    /// latched verdict, once [`Deadline::expired`] has tripped).
    #[inline]
    pub fn is_past(&self) -> bool {
        self.tripped || self.start.elapsed() >= self.budget
    }

    /// Time left before expiry (zero once past).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.start.elapsed())
    }
}

/// Clock/scheduler for a closed system.
#[derive(Debug, Clone)]
pub struct Sim {
    cycle: u64,
    /// Clock period in picoseconds, used to convert cycle counts into
    /// wall-clock time for the paper's runtime comparisons. The GA module
    /// in the paper runs at 50 MHz → 20 000 ps.
    period_ps: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new_50mhz()
    }
}

impl Sim {
    /// A simulator with an explicit clock period in picoseconds.
    pub fn new(period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be positive");
        Sim {
            cycle: 0,
            period_ps,
        }
    }

    /// The paper's GA-module clock: 50 MHz (20 ns).
    pub fn new_50mhz() -> Self {
        Sim::new(20_000)
    }

    /// Cycles elapsed since construction / [`Sim::reset_cycles`].
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Clock period in picoseconds.
    #[inline]
    pub fn period_ps(&self) -> u64 {
        self.period_ps
    }

    /// Elapsed simulated time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        (self.cycle as f64) * (self.period_ps as f64) * 1e-12
    }

    /// Zero the cycle counter (e.g. after programming, before timing the
    /// optimization run, like the paper's 32-bit hardware counter).
    pub fn reset_cycles(&mut self) {
        self.cycle = 0;
    }

    /// Run one full clock cycle: the caller-provided closure performs the
    /// evaluation phase (sampling outputs, calling each module's `eval`),
    /// then the scheduler invokes `commit` on the system.
    pub fn step<S: Clocked>(&mut self, system: &mut S, eval: impl FnOnce(&mut S)) {
        eval(system);
        system.commit();
        self.cycle += 1;
    }

    /// Run until `done(system)` returns true, with a watchdog.
    ///
    /// `eval` is the per-cycle evaluation phase. The condition is checked
    /// *after* each commit, on architecturally visible state.
    pub fn run_until<S: Clocked>(
        &mut self,
        system: &mut S,
        max_cycles: u64,
        mut eval: impl FnMut(&mut S),
        mut done: impl FnMut(&S) -> bool,
    ) -> Result<u64, SimError> {
        let start = self.cycle;
        loop {
            if self.cycle - start >= max_cycles {
                return Err(SimError::Timeout {
                    cycles: self.cycle - start,
                });
            }
            self.step(system, &mut eval);
            if done(system) {
                return Ok(self.cycle - start);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[derive(Default)]
    struct Count {
        n: Reg<u32>,
    }
    impl Clocked for Count {
        fn reset(&mut self) {
            self.n.reset_to(0);
        }
        fn commit(&mut self) {
            self.n.commit();
        }
    }

    #[test]
    fn run_until_counts_cycles() {
        let mut sim = Sim::new_50mhz();
        let mut c = Count::default();
        c.reset();
        let cycles = sim
            .run_until(
                &mut c,
                1000,
                |c| {
                    let v = c.n.get();
                    c.n.set(v + 1)
                },
                |c| c.n.get() == 10,
            )
            .unwrap();
        assert_eq!(cycles, 10);
        assert_eq!(sim.cycles(), 10);
    }

    #[test]
    fn watchdog_fires() {
        let mut sim = Sim::new_50mhz();
        let mut c = Count::default();
        c.reset();
        let err = sim
            .run_until(&mut c, 5, |_| {}, |c| c.n.get() == 10)
            .unwrap_err();
        assert_eq!(err, SimError::Timeout { cycles: 5 });
    }

    #[test]
    fn elapsed_time_matches_50mhz() {
        let mut sim = Sim::new_50mhz();
        let mut c = Count::default();
        c.reset();
        for _ in 0..50_000 {
            sim.step(&mut c, |_| {});
        }
        // 50k cycles at 20 ns = 1 ms.
        assert!((sim.elapsed_seconds() - 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_period_rejected() {
        let _ = Sim::new(0);
    }

    #[test]
    fn zero_deadline_expires_on_first_check() {
        // The amortized path must not defer the very first clock read:
        // a 0 ms budget fires deterministically on call one.
        let mut d = Deadline::after_ms(0);
        assert!(d.expired());
        assert!(d.is_past());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn expired_is_sticky_after_first_trip() {
        // Once a deadline has fired it must keep reporting expired on
        // every later call — the old amortized path answered `false`
        // for the rest of the stride, letting a loop that ignores a
        // single verdict run another 1023 iterations for free.
        let mut d = Deadline::after_ms(0);
        assert!(d.expired());
        for _ in 0..5_000 {
            assert!(d.expired(), "expired() must be sticky-monotonic");
        }
        assert!(d.is_past());
    }

    #[test]
    fn slow_loop_does_not_overshoot_by_a_full_stride() {
        // A loop whose body costs ~1 ms per call must notice a 50 ms
        // budget long before the fixed 1024-call stride would (the old
        // code slept through the whole stride: ≥ 1 s of overshoot).
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        let mut d = Deadline::after(budget);
        let mut calls = 0u32;
        while !d.expired() {
            std::thread::sleep(Duration::from_millis(1));
            calls += 1;
            assert!(calls < 4_000, "deadline never tripped");
        }
        let overshoot = start.elapsed().saturating_sub(budget);
        assert!(
            overshoot < Duration::from_millis(450),
            "overshot the budget by {overshoot:?}"
        );
    }

    #[test]
    fn generous_deadline_does_not_expire() {
        let mut d = Deadline::after(Duration::from_secs(3600));
        for _ in 0..10_000 {
            assert!(!d.expired());
        }
        assert!(!d.is_past());
        assert!(d.remaining() > Duration::from_secs(3000));
    }

    #[test]
    fn deadline_error_displays_cycles() {
        let e = SimError::DeadlineExceeded { cycles: 42 };
        assert!(e.to_string().contains("42"));
        assert_ne!(e, SimError::Timeout { cycles: 42 });
    }
}
