//! Transaction scoreboard — expected-vs-observed stream checking.
//!
//! The verification-methodology companion to the protocol monitor: a
//! [`Scoreboard`] is loaded with a reference model (a function from
//! request payload to expected response) and fed every completed
//! transaction; it records mismatches, out-of-order completions and
//! leftover expectations. System tests attach one to the fitness
//! interface so every value the GA core ever consumes is checked
//! against the ROM ground truth — not just the final answer.

use std::collections::VecDeque;
use std::fmt::Debug;

/// Scoreboard over transactions with payload `P` and response `R`.
#[derive(Debug, Clone)]
pub struct Scoreboard<P: Debug + Copy, R: Debug + Copy + PartialEq> {
    pending: VecDeque<(P, R)>,
    completed: u64,
    errors: Vec<String>,
    max_errors: usize,
}

impl<P: Debug + Copy, R: Debug + Copy + PartialEq> Default for Scoreboard<P, R> {
    fn default() -> Self {
        Scoreboard {
            pending: VecDeque::new(),
            completed: 0,
            errors: Vec::new(),
            max_errors: 64,
        }
    }
}

impl<P: Debug + Copy, R: Debug + Copy + PartialEq> Scoreboard<P, R> {
    /// New, empty scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a request with `payload` was issued and `expected`
    /// is the reference model's answer.
    pub fn expect(&mut self, payload: P, expected: R) {
        self.pending.push_back((payload, expected));
    }

    /// Record an observed completion (in issue order).
    pub fn observe(&mut self, response: R) {
        match self.pending.pop_front() {
            None => self.err(format!(
                "unexpected response {response:?} with nothing pending"
            )),
            Some((payload, expected)) => {
                self.completed += 1;
                if response != expected {
                    self.err(format!(
                        "payload {payload:?}: expected {expected:?}, observed {response:?}"
                    ));
                }
            }
        }
    }

    fn err(&mut self, msg: String) {
        if self.errors.len() < self.max_errors {
            self.errors.push(msg);
        }
    }

    /// Completed transactions.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Outstanding (issued but unanswered) transactions.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Recorded mismatches/errors.
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Final check: no errors and nothing left pending.
    pub fn assert_clean(&self) {
        assert!(
            self.errors.is_empty(),
            "scoreboard errors ({} total): {:?}",
            self.errors.len(),
            self.errors
        );
        assert_eq!(
            self.outstanding(),
            0,
            "{} transactions never completed",
            self.outstanding()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_stream_is_clean() {
        let mut sb: Scoreboard<u16, u16> = Scoreboard::new();
        for p in [1u16, 2, 3] {
            sb.expect(p, p * 10);
        }
        for r in [10u16, 20, 30] {
            sb.observe(r);
        }
        sb.assert_clean();
        assert_eq!(sb.completed(), 3);
    }

    #[test]
    fn mismatch_is_recorded_with_payload() {
        let mut sb: Scoreboard<u16, u16> = Scoreboard::new();
        sb.expect(7, 70);
        sb.observe(71);
        assert_eq!(sb.errors().len(), 1);
        assert!(sb.errors()[0].contains('7'));
    }

    #[test]
    fn unexpected_response_is_an_error() {
        let mut sb: Scoreboard<u16, u16> = Scoreboard::new();
        sb.observe(5);
        assert!(sb.errors()[0].contains("nothing pending"));
    }

    #[test]
    #[should_panic]
    fn leftover_expectations_fail_the_final_check() {
        let mut sb: Scoreboard<u16, u16> = Scoreboard::new();
        sb.expect(1, 10);
        sb.assert_clean();
    }

    #[test]
    fn error_log_is_bounded() {
        let mut sb: Scoreboard<u16, u16> = Scoreboard::new();
        for _ in 0..1000 {
            sb.observe(0);
        }
        assert!(sb.errors().len() <= 64);
    }
}
