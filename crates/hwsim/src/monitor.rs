//! Protocol assertion monitor — the simulation analog of an SVA bound
//! checker.
//!
//! The paper's pitch leans on "the simplicity of all the interfacing
//! protocols ... reduces timing issues during implementation". This
//! monitor makes the protocol contract executable: it passively watches
//! a request/valid pair every cycle and records violations of the
//! four-phase discipline:
//!
//! 1. `valid` must never assert while no request is outstanding;
//! 2. a request must be held until its `valid` arrives (no aborts);
//! 3. `valid` must deassert within a bounded window after the request
//!    drops;
//! 4. a new request must not start while the previous `valid` is still
//!    draining.
//!
//! System models attach one per handshake and assert `violations()` is
//! empty at the end of every test run.

/// Passive watcher for one request/valid handshake.
#[derive(Debug, Clone)]
pub struct HandshakeMonitor {
    name: String,
    /// Max cycles valid may persist after the request drops.
    drain_bound: u32,
    state: MonState,
    drain_count: u32,
    cycle: u64,
    transactions: u64,
    violations: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MonState {
    Idle,
    /// Request asserted, no valid yet.
    Requested,
    /// Request and valid both high.
    Responding,
    /// Request dropped; valid draining.
    Draining,
}

impl HandshakeMonitor {
    /// Create a monitor; `drain_bound` is the maximum number of cycles
    /// `valid` may stay high after the request deasserts.
    pub fn new(name: &str, drain_bound: u32) -> Self {
        HandshakeMonitor {
            name: name.to_owned(),
            drain_bound,
            state: MonState::Idle,
            drain_count: 0,
            cycle: 0,
            transactions: 0,
            violations: Vec::new(),
        }
    }

    fn flag(&mut self, msg: &str) {
        // Bound the log so a broken design doesn't eat memory.
        if self.violations.len() < 64 {
            self.violations
                .push(format!("[{} @ cycle {}] {}", self.name, self.cycle, msg));
        }
    }

    /// Observe one clock cycle of the handshake.
    pub fn observe(&mut self, req: bool, valid: bool) {
        match self.state {
            MonState::Idle => {
                if valid {
                    self.flag("valid asserted with no outstanding request");
                }
                if req {
                    self.state = if valid {
                        MonState::Responding
                    } else {
                        MonState::Requested
                    };
                }
            }
            MonState::Requested => {
                if !req && !valid {
                    self.flag("request aborted before a response arrived");
                    self.state = MonState::Idle;
                } else if valid {
                    self.state = MonState::Responding;
                }
            }
            MonState::Responding => {
                if !valid && req {
                    self.flag("valid dropped while the request was still held");
                    self.state = MonState::Requested;
                } else if !req {
                    self.transactions += 1;
                    if valid {
                        self.drain_count = 0;
                        self.state = MonState::Draining;
                    } else {
                        self.state = MonState::Idle;
                    }
                }
            }
            MonState::Draining => {
                if req {
                    self.flag("new request started while valid was still draining");
                    self.state = if valid {
                        MonState::Responding
                    } else {
                        MonState::Requested
                    };
                } else if valid {
                    self.drain_count += 1;
                    if self.drain_count > self.drain_bound {
                        self.flag("valid failed to deassert after the request dropped");
                        self.state = MonState::Idle; // report once
                    }
                } else {
                    self.state = MonState::Idle;
                }
            }
        }
        self.cycle += 1;
    }

    /// Completed transactions observed.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Recorded violations (empty = protocol held).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(mon: &mut HandshakeMonitor, trace: &[(u8, u8)]) {
        for &(r, v) in trace {
            mon.observe(r == 1, v == 1);
        }
    }

    #[test]
    fn clean_transaction_passes() {
        let mut m = HandshakeMonitor::new("fit", 4);
        drive(
            &mut m,
            &[(0, 0), (1, 0), (1, 0), (1, 1), (0, 1), (0, 0), (0, 0)],
        );
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        assert_eq!(m.transactions(), 1);
    }

    #[test]
    fn back_to_back_transactions_pass() {
        let mut m = HandshakeMonitor::new("fit", 4);
        let one = [(1u8, 0u8), (1, 1), (0, 1), (0, 0)];
        for _ in 0..5 {
            drive(&mut m, &one);
        }
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        assert_eq!(m.transactions(), 5);
    }

    #[test]
    fn spurious_valid_flagged() {
        let mut m = HandshakeMonitor::new("fit", 4);
        drive(&mut m, &[(0, 0), (0, 1)]);
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].contains("no outstanding request"));
    }

    #[test]
    fn aborted_request_flagged() {
        let mut m = HandshakeMonitor::new("fit", 4);
        drive(&mut m, &[(1, 0), (1, 0), (0, 0)]);
        assert!(m.violations()[0].contains("aborted"));
    }

    #[test]
    fn stuck_valid_flagged() {
        let mut m = HandshakeMonitor::new("fit", 2);
        drive(&mut m, &[(1, 0), (1, 1), (0, 1), (0, 1), (0, 1), (0, 1)]);
        assert!(m
            .violations()
            .iter()
            .any(|v| v.contains("failed to deassert")));
    }

    #[test]
    fn early_reuse_flagged() {
        let mut m = HandshakeMonitor::new("fit", 4);
        drive(&mut m, &[(1, 0), (1, 1), (0, 1), (1, 1)]);
        assert!(m.violations().iter().any(|v| v.contains("still draining")));
    }

    #[test]
    fn violation_log_is_bounded() {
        let mut m = HandshakeMonitor::new("fit", 1);
        for _ in 0..1000 {
            m.observe(false, true); // endless spurious valids
        }
        assert!(m.violations().len() <= 64);
    }
}
