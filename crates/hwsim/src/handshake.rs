//! Two-way handshake helper state machines.
//!
//! The paper's IP core uses exactly two handshake idioms, both "simple
//! two-way handshaking":
//!
//! * **Parameter initialization** (Table II signals 4–7): the user drives
//!   `index`/`value` and asserts `data_valid`; the core stores the value,
//!   asserts `data_ack`, waits for `data_valid` to fall, then drops
//!   `data_ack`. The core is the *slave* — modeled by [`AckSlave`].
//! * **Fitness evaluation** (signals 8–11): the core drives `candidate`
//!   and asserts `fit_request`; the fitness module computes, drives
//!   `fit_value` and asserts `fit_valid`; the core samples the value and
//!   drops `fit_request`; the module drops `fit_valid`. The core is the
//!   *master* — modeled by [`ReqMaster`].
//!
//! Both helpers are plain clocked FSMs built from [`Reg`]s so they can be
//! embedded in any module and obey the two-phase discipline.

use crate::reg::Reg;

/// Master side of a request/valid handshake (the GA core's fitness port).
///
/// Protocol timeline (one transaction):
///
/// ```text
/// cycle:      0      1 .. k      k+1        k+2
/// req:        1      1           0          0
/// payload:    D      D           -          -
/// valid:      0      0/1...1     1→(slave)  0
/// resp:              R (while valid)
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReqMaster {
    /// Registered request output.
    req: Reg<bool>,
    /// Captured response (valid once [`ReqMaster::take_response`] returns true).
    resp: Reg<u32>,
    state: Reg<MasterState>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum MasterState {
    #[default]
    Idle,
    /// Request asserted; waiting for the slave's valid.
    Waiting,
    /// Response captured; waiting for valid to fall before reuse.
    Draining,
}

impl ReqMaster {
    /// Reset to idle with the request deasserted.
    pub fn reset(&mut self) {
        self.req.reset_to(false);
        self.resp.reset_to(0);
        self.state.reset_to(MasterState::Idle);
    }

    /// Commit all internal registers (call from the owner's `commit`).
    pub fn commit(&mut self) {
        self.req.commit();
        self.resp.commit();
        self.state.commit();
    }

    /// The registered request line, to be wired to the slave.
    #[inline]
    pub fn req(&self) -> bool {
        self.req.get()
    }

    /// True when no transaction is in flight and a new one may start.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.state.get() == MasterState::Idle
    }

    /// Begin a transaction: assert `req` from the next cycle. Must only
    /// be called when idle.
    pub fn start(&mut self) {
        debug_assert!(self.is_idle(), "ReqMaster::start while busy");
        self.req.set(true);
        self.state.set(MasterState::Waiting);
    }

    /// Evaluation-phase step. `valid` and `resp_bus` are the slave's
    /// registered outputs as sampled this cycle. Returns `Some(resp)`
    /// exactly once per transaction, on the cycle the response is
    /// captured.
    pub fn eval(&mut self, valid: bool, resp_bus: u32) -> Option<u32> {
        match self.state.get() {
            MasterState::Idle => None,
            MasterState::Waiting => {
                if valid {
                    self.resp.set(resp_bus);
                    self.req.set(false);
                    self.state.set(MasterState::Draining);
                    Some(resp_bus)
                } else {
                    None
                }
            }
            MasterState::Draining => {
                if !valid {
                    self.state.set(MasterState::Idle);
                }
                None
            }
        }
    }

    /// The most recently captured response.
    #[inline]
    pub fn response(&self) -> u32 {
        self.resp.get()
    }
}

/// Slave side of a valid/ack handshake (the GA core's init port).
#[derive(Debug, Clone, Default)]
pub struct AckSlave {
    ack: Reg<bool>,
    state: Reg<SlaveState>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum SlaveState {
    #[default]
    Idle,
    /// Ack asserted; waiting for the master's valid to fall.
    Holding,
}

impl AckSlave {
    /// Reset to idle with ack deasserted.
    pub fn reset(&mut self) {
        self.ack.reset_to(false);
        self.state.reset_to(SlaveState::Idle);
    }

    /// Commit internal registers.
    pub fn commit(&mut self) {
        self.ack.commit();
        self.state.commit();
    }

    /// The registered acknowledge line, to be wired back to the master.
    #[inline]
    pub fn ack(&self) -> bool {
        self.ack.get()
    }

    /// Evaluation-phase step. Returns `Some(payload)` exactly once per
    /// transaction, on the cycle the payload is accepted.
    pub fn eval(&mut self, valid: bool, payload: u32) -> Option<u32> {
        match self.state.get() {
            SlaveState::Idle => {
                if valid {
                    self.ack.set(true);
                    self.state.set(SlaveState::Holding);
                    Some(payload)
                } else {
                    None
                }
            }
            SlaveState::Holding => {
                if !valid {
                    self.ack.set(false);
                    self.state.set(SlaveState::Idle);
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a full master↔slave transaction and check the four-phase
    /// sequencing cycle by cycle.
    #[test]
    fn master_slave_four_phase() {
        let mut m = ReqMaster::default();
        let mut s = AckSlave::default();
        m.reset();
        s.reset();

        // A toy slave that, when it accepts payload P, answers with P+1
        // one cycle later using a valid line (here the slave's ack doubles
        // as valid and we use a separate response register).
        let mut slave_valid = Reg::<bool>::default();
        let mut slave_resp = Reg::<u32>::default();

        m.start();
        m.commit();
        assert!(m.req());

        let mut accepted = None;
        let mut captured = None;
        for _cycle in 0..10 {
            // Slave watches the master's registered request as "valid in".
            if let Some(p) = s.eval(m.req(), 41) {
                accepted = Some(p);
                slave_resp.set(p + 1);
                slave_valid.set(true);
            }
            if !m.req() {
                slave_valid.set(false);
            }
            // Master watches the slave's registered valid.
            if let Some(r) = m.eval(slave_valid.get(), slave_resp.get()) {
                captured = Some(r);
            }
            m.commit();
            s.commit();
            slave_valid.commit();
            slave_resp.commit();
            if m.is_idle() && captured.is_some() {
                break;
            }
        }
        assert_eq!(accepted, Some(41));
        assert_eq!(captured, Some(42));
        assert!(!m.req());
        assert!(m.is_idle());
    }

    #[test]
    fn slave_holds_ack_until_valid_falls() {
        let mut s = AckSlave::default();
        s.reset();
        assert_eq!(s.eval(true, 7), Some(7));
        s.commit();
        assert!(s.ack());
        // Master keeps valid high: no re-acceptance, ack stays high.
        assert_eq!(s.eval(true, 9), None);
        s.commit();
        assert!(s.ack());
        // Valid falls: ack falls next cycle.
        assert_eq!(s.eval(false, 0), None);
        s.commit();
        assert!(!s.ack());
        // New transaction accepted.
        assert_eq!(s.eval(true, 9), Some(9));
    }

    #[test]
    fn master_captures_exactly_once() {
        let mut m = ReqMaster::default();
        m.reset();
        m.start();
        m.commit();
        // Valid high for several cycles: the response is delivered once.
        assert_eq!(m.eval(true, 5), Some(5));
        m.commit();
        assert_eq!(m.eval(true, 6), None);
        m.commit();
        assert_eq!(m.eval(false, 0), None);
        m.commit();
        assert!(m.is_idle());
        assert_eq!(m.response(), 5);
    }
}
