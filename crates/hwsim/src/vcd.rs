//! Minimal VCD (IEEE 1364 value change dump) writer.
//!
//! Lets a testbench dump simulation activity in a format any waveform
//! viewer (GTKWave etc.) understands, mirroring the ModelSim/NC-Verilog
//! verification flow of the paper. Only the subset needed for vector and
//! scalar wires is implemented: header, variable declarations, and
//! timestamped value changes with change-suppression.

use std::fmt::Write as _;

/// Handle for a declared VCD variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcdVar(usize);

#[derive(Debug, Clone)]
struct VarDecl {
    name: String,
    width: u32,
    id: String,
    last: Option<u64>,
}

/// An in-memory VCD document builder.
#[derive(Debug, Clone)]
pub struct VcdWriter {
    timescale_ps: u64,
    module: String,
    vars: Vec<VarDecl>,
    body: String,
    cur_time: Option<u64>,
    headers_done: bool,
}

impl VcdWriter {
    /// Create a writer; `timescale_ps` is the unit of the time values
    /// passed to [`VcdWriter::change`] (e.g. 20_000 for one 50 MHz cycle
    /// per tick).
    pub fn new(module: &str, timescale_ps: u64) -> Self {
        assert!(timescale_ps > 0);
        VcdWriter {
            timescale_ps,
            module: module.to_owned(),
            vars: Vec::new(),
            body: String::new(),
            cur_time: None,
            headers_done: false,
        }
    }

    /// Declare a variable before the first change is emitted.
    pub fn add_var(&mut self, name: &str, width: u32) -> VcdVar {
        assert!(!self.headers_done, "declare all vars before first change");
        assert!((1..=64).contains(&width));
        let idx = self.vars.len();
        self.vars.push(VarDecl {
            name: name.to_owned(),
            width,
            id: Self::identifier(idx),
            last: None,
        });
        VcdVar(idx)
    }

    /// VCD identifier codes: printable ASCII 33..=126, base-94.
    fn identifier(mut idx: usize) -> String {
        let mut s = String::new();
        loop {
            s.push((33 + (idx % 94)) as u8 as char);
            idx /= 94;
            if idx == 0 {
                break;
            }
        }
        s
    }

    /// Record a value change at time `t` (ticks). Unchanged values are
    /// suppressed; time must be non-decreasing.
    pub fn change(&mut self, var: VcdVar, t: u64, value: u64) {
        self.headers_done = true;
        let decl = &self.vars[var.0];
        if decl.last == Some(value) {
            return;
        }
        if self.cur_time != Some(t) {
            if let Some(prev) = self.cur_time {
                assert!(t >= prev, "VCD time must be non-decreasing");
            }
            let _ = writeln!(self.body, "#{t}");
            self.cur_time = Some(t);
        }
        let decl = &mut self.vars[var.0];
        decl.last = Some(value);
        if decl.width == 1 {
            let _ = writeln!(self.body, "{}{}", value & 1, decl.id);
        } else {
            let mut bits = String::with_capacity(decl.width as usize);
            for b in (0..decl.width).rev() {
                bits.push(if (value >> b) & 1 == 1 { '1' } else { '0' });
            }
            let _ = writeln!(self.body, "b{} {}", bits, decl.id);
        }
    }

    /// Render the complete VCD document.
    pub fn finish(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date (hwsim) $end");
        let _ = writeln!(out, "$version hwsim-vcd 0.1 $end");
        let _ = writeln!(out, "$timescale {} ps $end", self.timescale_ps);
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for v in &self.vars {
            let _ = writeln!(out, "$var wire {} {} {} $end", v.width, v.id, v.name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_lists_vars() {
        let mut w = VcdWriter::new("ga_core", 20_000);
        let clk = w.add_var("clk", 1);
        let bus = w.add_var("candidate", 16);
        w.change(clk, 0, 1);
        w.change(bus, 0, 0xABCD);
        let doc = w.finish();
        assert!(doc.contains("$timescale 20000 ps $end"));
        assert!(doc.contains("$var wire 1 ! clk $end"));
        assert!(doc.contains("$var wire 16 \" candidate $end"));
        assert!(doc.contains("b1010101111001101 \""));
    }

    #[test]
    fn unchanged_values_suppressed() {
        let mut w = VcdWriter::new("m", 1);
        let v = w.add_var("x", 1);
        w.change(v, 0, 1);
        w.change(v, 1, 1);
        w.change(v, 2, 0);
        let doc = w.finish();
        assert_eq!(doc.matches("#1").count(), 0, "no change at t=1: {doc}");
        assert!(doc.contains("#2"));
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = VcdWriter::identifier(i);
            assert!(id.bytes().all(|b| (33..=126).contains(&b)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    #[should_panic]
    fn declaring_after_change_panics() {
        let mut w = VcdWriter::new("m", 1);
        let v = w.add_var("x", 1);
        w.change(v, 0, 1);
        let _ = w.add_var("y", 1);
    }

    #[test]
    #[should_panic]
    fn time_must_not_go_backwards() {
        let mut w = VcdWriter::new("m", 1);
        let v = w.add_var("x", 4);
        w.change(v, 5, 1);
        w.change(v, 3, 2);
    }
}
