//! Fault-injection vocabulary shared by every fault campaign.
//!
//! The paper's core is delivered with a full scan chain (§III-C.2:
//! "all the flip-flops of the sequential part were replaced by scan
//! flip-flops"), which is exactly the access mechanism a single-event-
//! upset (SEU) campaign needs: any architectural bit can be read out,
//! corrupted, and written back without bypassing the silicon's own
//! datapath. This module defines the *kinds* of corruption and the
//! *outcome classes*; the mechanisms live next to each model (the
//! scan-chain shifter in `ga-core`, the register-word injector in
//! `ga-synth::fault`), and the campaign driver in `ga-bench` sweeps
//! them.

use std::fmt;

/// How one stored bit is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitFault {
    /// Transient SEU: invert the bit once.
    Flip,
    /// Stuck-at-0: the cell reads 0 for the fault's duration.
    Force0,
    /// Stuck-at-1: the cell reads 1 for the fault's duration.
    Force1,
}

impl BitFault {
    /// All fault polarities, in sweep order.
    pub const ALL: [BitFault; 3] = [BitFault::Flip, BitFault::Force0, BitFault::Force1];

    /// Apply to a single bit value.
    #[inline]
    pub fn apply(self, bit: bool) -> bool {
        match self {
            BitFault::Flip => !bit,
            BitFault::Force0 => false,
            BitFault::Force1 => true,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BitFault::Flip => "flip",
            BitFault::Force0 => "stuck0",
            BitFault::Force1 => "stuck1",
        }
    }
}

/// One corruption of one scan-chain position (the unit a scan-based
/// campaign sweeps). `position` indexes the serialized chain in
/// scan order — position 0 is the first bit shifted *in* last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanBitOp {
    /// Bit index into the serialized scan chain.
    pub position: usize,
    /// The corruption applied to that bit.
    pub kind: BitFault,
}

/// Outcome of one faulted run against its fault-free golden reference.
///
/// Classification precedence (checked in this order):
/// 1. [`Hung`](FaultClass::Hung) — the watchdog fired; the corrupted
///    control state never reached `GA_done`.
/// 2. [`Corrupted`](FaultClass::Corrupted) — the run finished but its
///    final answer differs from the golden answer (silent data
///    corruption, the class that matters for dependability).
/// 3. [`Detected`](FaultClass::Detected) — the final answer is correct
///    but the observable trajectory (per-generation statistics, RNG
///    draw count, cycle count) diverged: the fault was real, visible to
///    a checker, and then healed (elitism re-finding the optimum is the
///    common healer).
/// 4. [`Masked`](FaultClass::Masked) — nothing observable changed; the
///    corrupted bit was dead state or rewritten before use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// No observable difference from the golden run.
    Masked,
    /// Observable divergence, but the final answer was still correct.
    Detected,
    /// The final answer is wrong — silent data corruption.
    Corrupted,
    /// The run did not complete under the watchdog.
    Hung,
}

impl FaultClass {
    /// Every class, in report order.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::Masked,
        FaultClass::Detected,
        FaultClass::Corrupted,
        FaultClass::Hung,
    ];

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Masked => "masked",
            FaultClass::Detected => "detected",
            FaultClass::Corrupted => "corrupted",
            FaultClass::Hung => "hung",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_fault_truth_table() {
        assert!(!BitFault::Flip.apply(true));
        assert!(BitFault::Flip.apply(false));
        assert!(!BitFault::Force0.apply(true));
        assert!(!BitFault::Force0.apply(false));
        assert!(BitFault::Force1.apply(true));
        assert!(BitFault::Force1.apply(false));
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let mut names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
        names.extend(BitFault::ALL.iter().map(|k| k.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate fault names");
        assert_eq!(FaultClass::Hung.to_string(), "hung");
    }
}
