//! # hwsim — a cycle-based two-phase hardware simulation kernel
//!
//! This crate is the substrate on which every hardware model in the GA IP
//! core reproduction is built. It provides the synchronous-digital-design
//! semantics that an RTL simulator (the paper used Cadence NC-Launch and
//! ModelSim) would provide, reduced to what a clock-accurate model needs:
//!
//! * [`Reg`] — a register with *two-phase* (current/next) semantics. All
//!   state in a clocked module lives in `Reg`s. During the evaluation
//!   phase every module reads only **current** values and writes only
//!   **next** values; a commit phase then latches every register at once.
//!   This exactly mirrors non-blocking assignment (`<=`) in Verilog and
//!   signal assignment in VHDL processes, and makes module evaluation
//!   order irrelevant — there are no simulation races by construction.
//! * [`Clocked`] — the trait every synchronous module implements
//!   (`reset`, `eval`, `commit`).
//! * [`Sim`] — a tiny scheduler that owns the cycle counter and drives a
//!   closed system of modules to a condition or a timeout.
//! * [`handshake`] — helper state machines for the paper's two-way
//!   (req/ack, valid/ack) handshake protocols.
//! * [`mem`] — synchronous single-port RAM and ROM models with the
//!   one-cycle read latency of FPGA block RAM (the paper's GA memory and
//!   lookup-table fitness modules are both Virtex-II Pro block RAMs).
//! * [`trace`] — a per-cycle signal trace recorder with CSV export, the
//!   moral equivalent of the Chipscope Pro capture cores the paper used
//!   to log `best fitness` and `sum of fitness` per generation.
//! * [`vcd`] — a minimal VCD (value change dump) writer so traces can be
//!   inspected in a waveform viewer.
//!
//! ## Two-phase discipline
//!
//! ```
//! use hwsim::{Reg, Clocked};
//!
//! /// A free-running 8-bit counter with synchronous clear.
//! #[derive(Default)]
//! struct Counter { count: Reg<u8> }
//!
//! impl Counter {
//!     fn eval(&mut self, clear: bool) {
//!         if clear {
//!             self.count.set(0);
//!         } else {
//!             self.count.set(self.count.get().wrapping_add(1));
//!         }
//!     }
//! }
//!
//! impl Clocked for Counter {
//!     fn reset(&mut self) { self.count.reset_to(0); }
//!     fn commit(&mut self) { self.count.commit(); }
//! }
//!
//! let mut c = Counter::default();
//! c.reset();
//! for _ in 0..5 { c.eval(false); c.commit(); }
//! assert_eq!(c.count.get(), 5);
//! c.eval(true); // evaluation phase: next value staged ...
//! assert_eq!(c.count.get(), 5); // ... but current value unchanged
//! c.commit(); // clock edge
//! assert_eq!(c.count.get(), 0);
//! ```

pub mod fault;
pub mod handshake;
pub mod mem;
pub mod monitor;
pub mod reg;
pub mod scoreboard;
pub mod sim;
pub mod trace;
pub mod vcd;

pub use fault::{BitFault, FaultClass, ScanBitOp};
pub use handshake::{AckSlave, ReqMaster};
pub use mem::{SpRam, SpRom};
pub use monitor::HandshakeMonitor;
pub use reg::Reg;
pub use scoreboard::Scoreboard;
pub use sim::{Clocked, Deadline, Sim, SimError};
pub use trace::{Trace, TraceSeries};
pub use vcd::VcdWriter;
