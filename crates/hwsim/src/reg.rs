//! Two-phase registers.
//!
//! A [`Reg`] models a D flip-flop (or a bank of them). It holds a
//! *current* value, visible to every reader during the evaluation phase,
//! and a staged *next* value that becomes current when [`Reg::commit`] is
//! called at the simulated clock edge. Writing the next value multiple
//! times within one evaluation phase is allowed — the last write wins,
//! matching the semantics of multiple non-blocking assignments to the
//! same signal inside one always-block.

/// A register (D flip-flop bank) with two-phase update semantics.
///
/// `T` is the value carried by the register; in this codebase it is
/// almost always `u8`/`u16`/`u32`/`bool` or a small `Copy` enum standing
/// in for an FSM state encoding.
#[derive(Debug, Clone)]
pub struct Reg<T: Copy> {
    cur: T,
    nxt: T,
}

impl<T: Copy + Default> Default for Reg<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Copy> Reg<T> {
    /// Create a register whose current and next values are both `v`.
    pub fn new(v: T) -> Self {
        Reg { cur: v, nxt: v }
    }

    /// Read the current (pre-edge) value. This is the only read that is
    /// legal during an evaluation phase.
    #[inline(always)]
    pub fn get(&self) -> T {
        self.cur
    }

    /// Stage a next value; it becomes visible after the next
    /// [`commit`](Reg::commit). Repeated `set`s in one phase overwrite
    /// each other (last write wins).
    #[inline(always)]
    pub fn set(&mut self, v: T) {
        self.nxt = v;
    }

    /// Peek at the staged next value. Only testbench/probe code should
    /// use this; synthesized logic cannot see the future.
    #[inline(always)]
    pub fn peek_next(&self) -> T {
        self.nxt
    }

    /// Latch the staged value: the simulated rising clock edge.
    #[inline(always)]
    pub fn commit(&mut self) {
        self.cur = self.nxt;
    }

    /// Asynchronous reset to a known value (both phases).
    #[inline]
    pub fn reset_to(&mut self, v: T) {
        self.cur = v;
        self.nxt = v;
    }
}

impl<T: Copy + PartialEq> Reg<T> {
    /// True if a commit right now would change the current value.
    /// Useful for activity-based probes and VCD writers.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        self.cur != self.nxt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_invisible_until_commit() {
        let mut r = Reg::new(7u16);
        r.set(9);
        assert_eq!(r.get(), 7);
        assert_eq!(r.peek_next(), 9);
        r.commit();
        assert_eq!(r.get(), 9);
    }

    #[test]
    fn last_write_wins_within_a_phase() {
        let mut r = Reg::new(0u8);
        r.set(1);
        r.set(2);
        r.set(3);
        r.commit();
        assert_eq!(r.get(), 3);
    }

    #[test]
    fn commit_without_set_holds_value() {
        let mut r = Reg::new(42u32);
        r.commit();
        r.commit();
        assert_eq!(r.get(), 42);
    }

    #[test]
    fn reset_clears_staged_value() {
        let mut r = Reg::new(1u8);
        r.set(200);
        r.reset_to(0);
        r.commit();
        assert_eq!(r.get(), 0);
    }

    #[test]
    fn dirty_tracks_pending_change() {
        let mut r = Reg::new(false);
        assert!(!r.is_dirty());
        r.set(true);
        assert!(r.is_dirty());
        r.commit();
        assert!(!r.is_dirty());
    }
}
