//! Synchronous memory models with block-RAM semantics.
//!
//! Virtex-II Pro block RAM (the paper's GA memory and lookup-table
//! fitness ROMs) has *synchronous* reads: the address is registered and
//! the data appears on the output port one clock later. The paper relies
//! on this ("the GA core places the memory address on the address bus and
//! reads the memory contents in the next clock cycle"), and the GA core
//! FSM spends an extra state per read because of it — so the latency is
//! load-bearing for the cycle counts reproduced in EXPERIMENTS.md.

use crate::reg::Reg;

/// Single-port synchronous RAM: one read *or* write per cycle.
///
/// Matches the paper's GA memory module: 8-bit address, 32-bit data
/// (16-bit chromosome + 16-bit fitness packed), write strobe, and a
/// registered read port.
#[derive(Debug, Clone)]
pub struct SpRam {
    data: Vec<u32>,
    /// Registered read-data output (block-RAM output register).
    dout: Reg<u32>,
}

impl SpRam {
    /// A RAM with `words` 32-bit words, zero-initialized (FPGA block RAM
    /// powers up to zero unless an INIT attribute says otherwise).
    pub fn new(words: usize) -> Self {
        SpRam {
            data: vec![0; words],
            dout: Reg::new(0),
        }
    }

    /// Number of addressable words.
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// Evaluation phase: one port, write-wins (when `wr` is asserted the
    /// cycle performs a write and the read register holds its old value,
    /// matching `NO_CHANGE` block-RAM write mode).
    pub fn eval(&mut self, addr: u8, din: u32, wr: bool) {
        let a = addr as usize % self.data.len();
        if wr {
            self.data[a] = din;
        } else {
            self.dout.set(self.data[a]);
        }
    }

    /// Registered read data (valid one cycle after the address was
    /// presented with `wr` deasserted).
    #[inline]
    pub fn dout(&self) -> u32 {
        self.dout.get()
    }

    /// Commit the output register.
    pub fn commit(&mut self) {
        self.dout.commit();
    }

    /// Reset: clears the output register, *not* the array contents (block
    /// RAM contents survive logic reset).
    pub fn reset(&mut self) {
        self.dout.reset_to(0);
    }

    /// Testbench backdoor read (no clocking) — the equivalent of reading
    /// the memory via JTAG/readback rather than through the port.
    pub fn backdoor(&self, addr: u8) -> u32 {
        self.data[addr as usize % self.data.len()]
    }

    /// Testbench backdoor write.
    pub fn backdoor_write(&mut self, addr: u8, v: u32) {
        let len = self.data.len();
        self.data[addr as usize % len] = v;
    }
}

/// Synchronous ROM: registered read port over immutable contents.
///
/// Models the block-ROM lookup fitness modules: the paper populates
/// Virtex-II Pro block RAMs with precomputed fitness values for every
/// one of the 2^16 chromosome encodings (48% of the device's block
/// memory, Table VI).
#[derive(Debug, Clone)]
pub struct SpRom {
    data: Vec<u16>,
    dout: Reg<u16>,
}

impl SpRom {
    /// Build a ROM from its full contents.
    pub fn from_contents(data: Vec<u16>) -> Self {
        assert!(!data.is_empty(), "ROM must have at least one word");
        SpRom {
            data,
            dout: Reg::new(0),
        }
    }

    /// Build a ROM by tabulating `f` over all `words` addresses — this is
    /// exactly how the paper's fitness ROMs are generated offline.
    pub fn tabulate(words: usize, f: impl Fn(u16) -> u16) -> Self {
        assert!(words > 0 && words <= 1 << 16);
        SpRom::from_contents((0..words as u32).map(|a| f(a as u16)).collect())
    }

    /// Number of addressable words.
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// Evaluation phase: present an address.
    pub fn eval(&mut self, addr: u16) {
        self.dout.set(self.data[addr as usize % self.data.len()]);
    }

    /// Registered read data (valid one cycle after `eval`).
    #[inline]
    pub fn dout(&self) -> u16 {
        self.dout.get()
    }

    /// Commit the output register.
    pub fn commit(&mut self) {
        self.dout.commit();
    }

    /// Reset the output register.
    pub fn reset(&mut self) {
        self.dout.reset_to(0);
    }

    /// Combinational backdoor lookup for testbenches.
    pub fn backdoor(&self, addr: u16) -> u16 {
        self.data[addr as usize % self.data.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_read_has_one_cycle_latency() {
        let mut m = SpRam::new(256);
        m.backdoor_write(5, 0xDEAD_BEEF);
        m.eval(5, 0, false);
        // Before commit, dout still holds the old value.
        assert_eq!(m.dout(), 0);
        m.commit();
        assert_eq!(m.dout(), 0xDEAD_BEEF);
    }

    #[test]
    fn ram_write_then_read() {
        let mut m = SpRam::new(16);
        m.eval(3, 77, true);
        m.commit();
        m.eval(3, 0, false);
        m.commit();
        assert_eq!(m.dout(), 77);
        assert_eq!(m.backdoor(3), 77);
    }

    #[test]
    fn ram_write_holds_read_register() {
        let mut m = SpRam::new(16);
        m.backdoor_write(1, 11);
        m.eval(1, 0, false);
        m.commit();
        assert_eq!(m.dout(), 11);
        // A write cycle must not disturb the read register (NO_CHANGE).
        m.eval(2, 22, true);
        m.commit();
        assert_eq!(m.dout(), 11);
    }

    #[test]
    fn ram_address_wraps_at_size() {
        let mut m = SpRam::new(8);
        m.eval(9, 99, true); // 9 % 8 == 1
        m.commit();
        assert_eq!(m.backdoor(1), 99);
    }

    #[test]
    fn rom_tabulate_matches_function() {
        let rom = SpRom::tabulate(1 << 8, |a| a.wrapping_mul(3));
        for a in 0..=255u16 {
            assert_eq!(rom.backdoor(a), a.wrapping_mul(3));
        }
    }

    #[test]
    fn rom_read_latency() {
        let mut rom = SpRom::tabulate(16, |a| a + 100);
        rom.eval(7);
        assert_eq!(rom.dout(), 0);
        rom.commit();
        assert_eq!(rom.dout(), 107);
    }

    #[test]
    #[should_panic]
    fn empty_rom_rejected() {
        let _ = SpRom::from_contents(vec![]);
    }
}
