//! Golden-value regression tests for the fitness ROMs.
//!
//! The ROM images are the ground truth of every experiment (they stand
//! in for the paper's pre-computed block-ROM contents), so any change
//! to the formulas, quantization or plateau handling must trip a test.
//! The checksums below were produced by this implementation and frozen;
//! spot values are human-verifiable from the printed formulas.

use ga_fitness::rom::FitnessRom;
use ga_fitness::TestFunction;

/// FNV-1a over the little-endian ROM bytes.
fn fnv1a(rom: &FitnessRom) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in rom.contents() {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[test]
fn rom_checksums_are_frozen() {
    let expected = [
        (TestFunction::Bf6, 0x0430_bb32_d9bc_6b97u64),
        (TestFunction::F2, 0x5099_64d1_b8ee_0c25),
        (TestFunction::F3, 0xbede_87bc_e65b_a225),
        (TestFunction::Mbf6_2, 0x58d6_a21d_6f47_5875),
        (TestFunction::Mbf7_2, 0x50f9_df5a_bdd0_cd48),
        (TestFunction::MShubert2D, 0x6451_7230_5909_4d23),
    ];
    for (f, want) in expected {
        let got = fnv1a(&FitnessRom::tabulate(f));
        assert_eq!(
            got,
            want,
            "{} ROM checksum changed: {:#018x} (update only if the formula change is intentional)",
            f.name(),
            got
        );
    }
}

#[test]
fn spot_values_match_hand_computation() {
    // F2(255, 0) = 8·255 + 1020 = 3060; F2(0, 255) clamps to 0.
    assert_eq!(TestFunction::F2.eval_u16(0xFF00), 3060);
    assert_eq!(TestFunction::F2.eval_u16(0x00FF), 0);
    // F3(16, 4) = 8·16 + 4·4 = 144.
    assert_eq!(TestFunction::F3.eval_u16(0x1004), 144);
    // BF6(0) = 0·cos0/4e6 + 3200 = 3200.
    assert_eq!(TestFunction::Bf6.eval_u16(0), 3200);
    // mBF6_2(0) = 4096.
    assert_eq!(TestFunction::Mbf6_2.eval_u16(0), 4096);
    // mBF7_2(0, 0) = 32768.
    assert_eq!(TestFunction::Mbf7_2.eval_u16(0), 32768);
}

#[test]
fn global_optima_are_frozen() {
    let expected = [
        (TestFunction::Bf6, 4272u16, 0xFFF1u16), // 65 521
        (TestFunction::F2, 3060, 0xFF00),
        (TestFunction::F3, 3060, 0xFFFF),
        (TestFunction::Mbf6_2, 8184, 0xFFF1),
        (TestFunction::Mbf7_2, 63_995, 0xF7F9), // (x, y) = (247, 249)
        // Lowest encoding on the saturated 65535 plateau (166 total;
        // the paper's (C2,4A)/(DB,4A) also lie on it).
        (TestFunction::MShubert2D, 65_535, 0x121E),
    ];
    for (f, max, argmax) in expected {
        assert_eq!(f.global_max(), max, "{} max", f.name());
        assert_eq!(f.global_argmax(), argmax, "{} argmax", f.name());
    }
}
