//! Fitness ROM tabulation and Virtex-II Pro block-RAM accounting.
//!
//! The paper's hardware experiments store the full fitness landscape in
//! block ROM: "block ROMs within the FPGA device are populated with the
//! fitness values corresponding to each solution encoding". On the
//! xc2vp30 that costs 48% of the device's block memory for one 2^16 × 16
//! lookup (Table VI), while the GA memory itself costs 1%. Both numbers
//! are pure geometry — RAMB16 aspect ratios versus required depth ×
//! width — and this module reproduces them exactly.

use crate::TestFunction;

/// Number of RAMB16 block RAMs on the paper's device (xc2vp30).
pub const XC2VP30_BRAMS: u32 = 136;

/// RAMB16 aspect ratios: (depth, data width). The 18 Kb block supports
/// parity bits in the ×9/×18/×36 modes; depth × width of the data
/// portion is 16 Kb in every mode.
pub const RAMB16_ASPECTS: [(u32, u32); 6] = [
    (16_384, 1),
    (8_192, 2),
    (4_096, 4),
    (2_048, 9),
    (1_024, 18),
    (512, 36),
];

/// Minimum number of RAMB16 primitives for a `depth × width` memory,
/// taking the best aspect ratio (the mapping the Xilinx tools perform).
pub fn bram16_count(depth: u32, width: u32) -> u32 {
    assert!(depth > 0 && width > 0);
    RAMB16_ASPECTS
        .iter()
        .map(|&(d, w)| depth.div_ceil(d) * width.div_ceil(w))
        .min()
        .unwrap()
}

/// Percent utilization of the xc2vp30's block memory, rounded to the
/// nearest percent (how Table VI reports it).
pub fn bram_utilization_pct(brams: u32) -> u32 {
    ((brams as f64 / XC2VP30_BRAMS as f64) * 100.0).round() as u32
}

/// A tabulated fitness ROM image: the contents the authors generate
/// offline and load into block ROM at synthesis time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitnessRom {
    contents: Vec<u16>,
}

impl FitnessRom {
    /// Tabulate a paper test function over all 2^16 encodings.
    pub fn tabulate(f: TestFunction) -> Self {
        FitnessRom {
            contents: (0..=u16::MAX).map(|c| f.eval_u16(c)).collect(),
        }
    }

    /// Tabulate an arbitrary fitness function (for user-defined FEMs).
    pub fn tabulate_fn(f: impl Fn(u16) -> u16) -> Self {
        FitnessRom {
            contents: (0..=u16::MAX).map(f).collect(),
        }
    }

    /// ROM contents (index = chromosome encoding).
    pub fn contents(&self) -> &[u16] {
        &self.contents
    }

    /// Consume into the raw vector (for loading into an `SpRom`).
    pub fn into_contents(self) -> Vec<u16> {
        self.contents
    }

    /// Combinational lookup.
    #[inline]
    pub fn lookup(&self, chrom: u16) -> u16 {
        self.contents[chrom as usize]
    }

    /// Block RAMs needed to hold this ROM on the paper's device.
    pub fn bram_cost(&self) -> u32 {
        bram16_count(self.contents.len() as u32, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitness_lookup_rom_costs_64_brams_48_percent() {
        // Table VI: "Block memory utilization (fitness lookup module): 48%".
        let rom = FitnessRom::tabulate(TestFunction::Mbf6_2);
        assert_eq!(rom.bram_cost(), 64);
        assert_eq!(bram_utilization_pct(rom.bram_cost()), 47);
        // 64/136 = 47.06% — the paper rounds to 48%; we assert the exact
        // primitive count and that the rounded figure is 47 ± 1.
        let pct = bram_utilization_pct(64);
        assert!((47..=48).contains(&pct), "pct = {pct}");
    }

    #[test]
    fn ga_memory_costs_1_bram_1_percent() {
        // Table VI: "Block memory utilization (GA memory): 1%".
        // GA memory is 256 words × 32 bits.
        assert_eq!(bram16_count(256, 32), 1);
        assert_eq!(bram_utilization_pct(1), 1);
    }

    #[test]
    fn aspect_selection_prefers_wide_shallow() {
        // 512 × 36 fits exactly one RAMB16.
        assert_eq!(bram16_count(512, 36), 1);
        // 1 bit deeper than an aspect allows doubles the count.
        assert_eq!(bram16_count(16_385, 1), 2);
        // 2^16 × 1 = four 16K×1 primitives.
        assert_eq!(bram16_count(1 << 16, 1), 4);
    }

    #[test]
    fn rom_matches_function_pointwise() {
        let rom = FitnessRom::tabulate(TestFunction::F3);
        for c in (0..=u16::MAX).step_by(251) {
            assert_eq!(rom.lookup(c), TestFunction::F3.eval_u16(c));
        }
        assert_eq!(rom.contents().len(), 1 << 16);
    }

    #[test]
    fn tabulate_fn_is_general() {
        let rom = FitnessRom::tabulate_fn(|c| c ^ 0x5555);
        assert_eq!(rom.lookup(0), 0x5555);
        assert_eq!(rom.lookup(0x5555), 0);
    }

    #[test]
    #[should_panic]
    fn zero_sized_memory_rejected() {
        let _ = bram16_count(0, 8);
    }
}
