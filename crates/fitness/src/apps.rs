//! A user-defined application fitness: FIR filter coefficient search.
//!
//! The paper's related work includes a GA "for optimization of FRM
//! digital filters over DBNS multiplier coefficient space" (ref. \[16\])
//! and the abstract promises the core "can be tailored to any given
//! application by interfacing with the appropriate application-specific
//! fitness evaluation module". This module is that demonstration: an
//! 8-tap *symmetric* (linear-phase) FIR filter whose four free
//! coefficients are signed 4-bit values packed into one 16-bit
//! chromosome, scored by how closely its magnitude response matches a
//! target response on a frequency grid.
//!
//! Like the paper's test functions, the fitness is tabulated offline
//! into a block ROM (`FitnessRom::tabulate_fn`) and served by the
//! standard [`crate::LookupFem`] handshake.

use std::f64::consts::PI;

/// Number of taps (symmetric: taps\[k\] == taps\[7−k\]).
pub const TAPS: usize = 8;

/// Frequencies of the evaluation grid (ω = π·k/16 for k = 1..=16,
/// i.e. 16 points from DC-adjacent to Nyquist).
pub const GRID_POINTS: usize = 16;

/// Decode a chromosome into the eight symmetric taps: four signed
/// 4-bit two's-complement coefficients `h0..h3` from the four nibbles
/// (LSB nibble = h0), mirrored.
pub fn decode_taps(chrom: u16) -> [i8; TAPS] {
    let nib = |k: u32| -> i8 {
        let v = ((chrom >> (4 * k)) & 0xF) as i8;
        if v >= 8 {
            v - 16
        } else {
            v
        }
    };
    let h = [nib(0), nib(1), nib(2), nib(3)];
    [h[0], h[1], h[2], h[3], h[3], h[2], h[1], h[0]]
}

/// Magnitude response |H(e^{jω})| of a tap set.
pub fn magnitude_response(taps: &[i8; TAPS], omega: f64) -> f64 {
    let mut re = 0.0;
    let mut im = 0.0;
    for (k, &t) in taps.iter().enumerate() {
        re += t as f64 * (omega * k as f64).cos();
        im -= t as f64 * (omega * k as f64).sin();
    }
    (re * re + im * im).sqrt()
}

/// Magnitude response on the evaluation grid.
pub fn response_grid(taps: &[i8; TAPS]) -> [f64; GRID_POINTS] {
    let mut out = [0.0; GRID_POINTS];
    for (k, slot) in out.iter_mut().enumerate() {
        let omega = PI * (k as f64 + 1.0) / GRID_POINTS as f64;
        *slot = magnitude_response(taps, omega);
    }
    out
}

/// The demo's golden design: a smooth low-pass tap set within the
/// 4-bit coefficient range.
pub const GOLDEN_CHROM: u16 = 0x7521; // h = [1, 2, 5, 7] mirrored

/// The target response: the golden filter's grid response.
pub fn lowpass_target() -> [f64; GRID_POINTS] {
    response_grid(&decode_taps(GOLDEN_CHROM))
}

/// Fitness of a candidate against a target response: full scale minus
/// the scaled sum of absolute response errors over the grid,
/// saturating at zero. The scale (64 fitness units per unit error)
/// keeps the golden design at exactly 65 535 and the worst designs
/// near zero.
pub fn filter_fitness(chrom: u16, target: &[f64; GRID_POINTS]) -> u16 {
    let got = response_grid(&decode_taps(chrom));
    let err: f64 = got.iter().zip(target).map(|(g, t)| (g - t).abs()).sum();
    (65535.0 - 64.0 * err).round().clamp(0.0, 65535.0) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taps_are_symmetric_linear_phase() {
        for chrom in [0u16, 0xFFFF, GOLDEN_CHROM, 0x8421] {
            let t = decode_taps(chrom);
            for k in 0..TAPS / 2 {
                assert_eq!(t[k], t[TAPS - 1 - k], "chrom {chrom:#06x} tap {k}");
            }
        }
    }

    #[test]
    fn nibble_decoding_is_twos_complement() {
        // 0xF = −1, 0x8 = −8, 0x7 = +7.
        let t = decode_taps(0xF887);
        assert_eq!(t[0], 7);
        assert_eq!(t[1], -8);
        assert_eq!(t[2], -8);
        assert_eq!(t[3], -1);
    }

    #[test]
    fn dc_response_is_tap_sum() {
        let taps = decode_taps(GOLDEN_CHROM);
        let sum: f64 = taps.iter().map(|&t| t as f64).sum();
        assert!((magnitude_response(&taps, 0.0) - sum.abs()).abs() < 1e-9);
    }

    #[test]
    fn golden_design_scores_full_scale() {
        let target = lowpass_target();
        assert_eq!(filter_fitness(GOLDEN_CHROM, &target), 65535);
    }

    #[test]
    fn zero_filter_scores_poorly() {
        let target = lowpass_target();
        let zero = filter_fitness(0x0000, &target);
        assert!(zero < 60_000, "all-zero taps score {zero}");
    }

    #[test]
    fn fitness_landscape_is_nontrivial() {
        // Many distinct fitness values, single full-scale optimum class.
        let target = lowpass_target();
        let mut distinct = std::collections::HashSet::new();
        let mut optima = 0u32;
        // Step 3 keeps the sweep fast and lands on the golden chrom
        // (0x7521 = 29 985 = 3 · 9 995).
        for c in (0..=u16::MAX).step_by(3) {
            let f = filter_fitness(c, &target);
            distinct.insert(f);
            if f == 65535 {
                optima += 1;
            }
        }
        assert!(
            distinct.len() > 1000,
            "only {} distinct values",
            distinct.len()
        );
        assert!((1..20).contains(&optima), "{optima} sampled optima");
    }

    #[test]
    fn golden_is_recoverable_by_the_ga_landscape() {
        // The exact optimum set over the full space: the golden chrom
        // must be in it (and symmetric-equivalent encodings may join).
        let target = lowpass_target();
        let optima: Vec<u16> = (0..=u16::MAX)
            .filter(|&c| filter_fitness(c, &target) == 65535)
            .collect();
        assert!(optima.contains(&GOLDEN_CHROM));
        assert!(
            optima.len() <= 4,
            "optimum class too large: {}",
            optima.len()
        );
    }
}
