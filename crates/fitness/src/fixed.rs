//! Fixed-point trigonometry: the "combinational implementation".
//!
//! The paper chose block-ROM lookup for its hardware fitness functions
//! because "this resulted in better operational speed than a
//! combinational implementation". This module supplies that rejected
//! alternative, so the trade-off can actually be measured: a CORDIC
//! sine/cosine kernel over binary angular measurement (BAM), plus
//! fixed-point evaluators for every paper function. A hardware CORDIC
//! FEM built from it lives in [`crate::fem::CordicFem`].
//!
//! Angles are carried as BAM: a `u32` where one full turn is 2^32. This
//! makes the argument reduction `x mod 2π` (needed because the test
//! functions use *integer radians* up to 65535) a single multiply, and
//! quadrant folding a wrap-around subtraction.

/// Multiplier for radians→BAM conversion: `round(2^48 / 2π)`.
/// `bam = (x · RAD_TO_BAM_Q48) >> 16 (mod 2^32)`.
const RAD_TO_BAM_Q48: u64 = 44_798_133_900_177; // round(2^48 / (2π))

/// CORDIC gain compensation `K = Π 1/√(1+2^-2i) ≈ 0.607252935…` in Q30.
const CORDIC_K_Q30: i64 = 652_032_874;

/// Number of CORDIC iterations (Q30 outputs converge well before 30).
const CORDIC_ITERS: u32 = 30;

/// `atan(2^-i)` in signed BAM units (2^32 = one turn), i = 0..30.
const ATAN_BAM: [i64; 30] = atan_table();

const fn atan_table() -> [i64; 30] {
    // Computed from the f64 values of atan(2^-i)/(2π)·2^32 — const fp
    // isn't stable for transcendental functions, so the values are
    // literal. Verified against f64 in tests::atan_table_is_correct.
    [
        536870912, // atan(1) = 1/8 turn exactly
        316933406, 167458907, 85004756, 42667331, 21354465, 10679838, 5340245, 2670163, 1335087,
        667544, 333772, 166886, 83443, 41722, 20861, 10430, 5215, 2608, 1304, 652, 326, 163, 81,
        41, 20, 10, 5, 3, 1,
    ]
}

/// Convert an integer-radian angle to BAM (`x mod 2π` as a turn
/// fraction). Exact to better than 2^-31 of a turn for all x < 2^16·16.
#[inline]
pub fn rad_to_bam(x: u32) -> u32 {
    ((x as u64).wrapping_mul(RAD_TO_BAM_Q48) >> 16) as u32
}

/// CORDIC rotation: cosine and sine of a BAM angle, in Q30.
pub fn cos_sin_bam(bam: u32) -> (i32, i32) {
    // Signed turn in [-1/2, 1/2): the two's-complement reinterpretation
    // of BAM does the range reduction for free.
    let mut z = bam as i32 as i64;
    // Fold into [-1/4, 1/4] turn where cos ≥ 0; remember the sign flip.
    const QUARTER: i64 = 1 << 30; // 2^32 / 4
    let mut flip = false;
    if z > QUARTER {
        z -= 2 * QUARTER;
        flip = true;
    } else if z < -QUARTER {
        z += 2 * QUARTER;
        flip = true;
    }
    let mut x: i64 = CORDIC_K_Q30;
    let mut y: i64 = 0;
    for (i, &a) in ATAN_BAM.iter().enumerate().take(CORDIC_ITERS as usize) {
        let (xs, ys) = (x >> i, y >> i);
        if z >= 0 {
            x -= ys;
            y += xs;
            z -= a;
        } else {
            x += ys;
            y -= xs;
            z += a;
        }
    }
    if flip {
        x = -x;
        y = -y;
    }
    (x as i32, y as i32)
}

/// Cosine of an integer-radian angle, Q30.
#[inline]
pub fn cos_rad_q30(x: u32) -> i32 {
    cos_sin_bam(rad_to_bam(x)).0
}

/// Sine of an integer-radian angle, Q30.
#[inline]
pub fn sin_rad_q30(x: u32) -> i32 {
    cos_sin_bam(rad_to_bam(x)).1
}

/// Round a Q30 value accumulated in i64 down to an integer with
/// round-half-away-from-zero, then clamp into the u16 fitness range.
#[inline]
fn q30_to_u16(v_q30: i64) -> u16 {
    let half = 1i64 << 29;
    let rounded = if v_q30 >= 0 {
        (v_q30 + half) >> 30
    } else {
        -((-v_q30 + half) >> 30)
    };
    rounded.clamp(0, 65535) as u16
}

/// Fixed-point BF6: `3200 + (x²+x)·cos(x)/4 000 000`.
pub fn bf6_fixed(x: u16) -> u16 {
    let t = (x as i64) * (x as i64) + x as i64; // ≤ 2^32
    let c = cos_rad_q30(x as u32) as i64;
    // t·c is Q30 of t·cos(x), ≤ 2^62 in magnitude: fits i64.
    let scaled = (t * c) / 4_000_000; // Q30 of t·cos(x)/4e6
    q30_to_u16(scaled + (3200i64 << 30))
}

/// Fixed-point mBF6_2: `4096 + (x²+x)·cos(x)/2^20`.
pub fn mbf6_2_fixed(x: u16) -> u16 {
    let t = (x as i64) * (x as i64) + x as i64;
    let c = cos_rad_q30(x as u32) as i64;
    let scaled = (t * c) >> 20; // Q30 of t·cos(x)/2^20
    q30_to_u16(scaled + (4096i64 << 30))
}

/// Fixed-point mBF7_2: `32768 + 56·(x·sin(4x) + 1.25·y·sin(2y))`.
pub fn mbf7_2_fixed(x: u8, y: u8) -> u16 {
    let s1 = sin_rad_q30(4 * x as u32) as i64;
    let s2 = sin_rad_q30(2 * y as u32) as i64;
    // 1.25·y·sin = (5·y·sin)/4; all terms ≤ 2^40, safely in i64.
    let term = (x as i64) * s1 + (5 * y as i64 * s2) / 4; // Q30
    q30_to_u16(56 * term + (32768i64 << 30))
}

/// Fixed-point 1-D Shubert sum in Q30: `Σ i·cos((i+1)x + i)`.
fn shubert1d_q30(x: u8) -> i64 {
    (1..=5u32)
        .map(|i| i as i64 * cos_rad_q30((i + 1) * x as u32 + i) as i64)
        .sum()
}

/// Fixed-point mShubert2D with saturating output.
pub fn mshubert2d_fixed(x1: u8, x2: u8) -> u16 {
    let s1 = shubert1d_q30(x1); // |s| ≤ 15·2^30
    let s2 = shubert1d_q30(x2);
    // Pre-shift each factor to Q15 so the product stays in i64 (a full
    // Q30×Q30 product of ±15 values would need 68 bits). The rounding
    // error this introduces is ≤ 15·2^-14, i.e. ≪ 1 fitness unit after
    // the ×174 scale.
    let prod = (s1 >> 15) * (s2 >> 15); // Q30 of the product, |p| ≤ 225·2^30
    let v = (65535i64 << 30) - 174 * ((150i64 << 30) + prod);
    q30_to_u16(v)
}

/// Fixed-point F2 (pure integer; negative results clamp to 0).
pub fn f2_fixed(x: u8, y: u8) -> u16 {
    (8 * x as i32 - 4 * y as i32 + 1020).clamp(0, 65535) as u16
}

/// Fixed-point F3 (pure integer).
pub fn f3_fixed(x: u8, y: u8) -> u16 {
    (8 * x as u32 + 4 * y as u32).min(65535) as u16
}

/// Fixed-point evaluation of any [`crate::TestFunction`] on a 16-bit
/// chromosome — the function computed by [`crate::fem::CordicFem`].
pub fn eval_fixed(f: crate::TestFunction, chrom: u16) -> u16 {
    use crate::functions::decode_xy;
    use crate::TestFunction as TF;
    match f {
        TF::Bf6 => bf6_fixed(chrom),
        TF::Mbf6_2 => mbf6_2_fixed(chrom),
        TF::F2 => {
            let (x, y) = decode_xy(chrom);
            f2_fixed(x, y)
        }
        TF::F3 => {
            let (x, y) = decode_xy(chrom);
            f3_fixed(x, y)
        }
        TF::Mbf7_2 => {
            let (x, y) = decode_xy(chrom);
            mbf7_2_fixed(x, y)
        }
        TF::MShubert2D => {
            let (x1, x2) = decode_xy(chrom);
            mshubert2d_fixed(x1, x2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions;
    use crate::TestFunction;

    #[test]
    fn atan_table_is_correct() {
        for (i, &a) in ATAN_BAM.iter().enumerate() {
            let exact = (2f64.powi(-(i as i32))).atan() / std::f64::consts::TAU * 2f64.powi(32);
            assert!(
                (a as f64 - exact).abs() <= 1.0,
                "atan entry {i}: {a} vs {exact}"
            );
        }
    }

    #[test]
    fn rad_to_bam_matches_f64() {
        for x in (0u32..=65535).step_by(17).chain([1, 2, 3, 65535]) {
            let bam = rad_to_bam(x) as f64 / 2f64.powi(32);
            let exact = (x as f64 / std::f64::consts::TAU).fract();
            let mut d = (bam - exact).abs();
            if d > 0.5 {
                d = 1.0 - d;
            }
            assert!(d < 1e-7, "x={x}: bam frac {bam} vs {exact}");
        }
    }

    #[test]
    fn cordic_cos_sin_accuracy() {
        for x in (0u32..=65535).step_by(13) {
            let (c, s) = cos_sin_bam(rad_to_bam(x));
            let cf = c as f64 / 2f64.powi(30);
            let sf = s as f64 / 2f64.powi(30);
            let xe = x as f64;
            assert!(
                (cf - xe.cos()).abs() < 1e-6,
                "cos({x}): {cf} vs {}",
                xe.cos()
            );
            assert!(
                (sf - xe.sin()).abs() < 1e-6,
                "sin({x}): {sf} vs {}",
                xe.sin()
            );
        }
    }

    #[test]
    fn cordic_pythagorean_identity() {
        for bam in (0u64..1 << 32).step_by((1 << 32) / 997) {
            let (c, s) = cos_sin_bam(bam as u32);
            let norm = (c as i64 * c as i64 + s as i64 * s as i64) as f64 / 2f64.powi(60);
            assert!((norm - 1.0).abs() < 1e-6, "bam={bam}: |v|² = {norm}");
        }
    }

    #[test]
    fn mbf6_2_fixed_matches_reference_exhaustively() {
        let mut worst = 0i32;
        for x in 0..=u16::MAX {
            let fx = mbf6_2_fixed(x) as i32;
            let ref_ = functions::quantize(functions::mbf6_2(x)) as i32;
            worst = worst.max((fx - ref_).abs());
        }
        assert!(worst <= 1, "worst |fixed - f64| = {worst}");
    }

    #[test]
    fn bf6_fixed_matches_reference_exhaustively() {
        let mut worst = 0i32;
        for x in 0..=u16::MAX {
            let d = (bf6_fixed(x) as i32 - TestFunction::Bf6.eval_u16(x) as i32).abs();
            worst = worst.max(d);
        }
        assert!(worst <= 1, "worst |fixed - f64| = {worst}");
    }

    #[test]
    fn mbf7_2_fixed_matches_reference_exhaustively() {
        let mut worst = 0i32;
        for c in 0..=u16::MAX {
            let d = (eval_fixed(TestFunction::Mbf7_2, c) as i32
                - TestFunction::Mbf7_2.eval_u16(c) as i32)
                .abs();
            worst = worst.max(d);
        }
        assert!(worst <= 1, "worst |fixed - f64| = {worst}");
    }

    #[test]
    fn mshubert_fixed_matches_reference_exhaustively() {
        let mut worst = 0i32;
        for c in 0..=u16::MAX {
            let d = (eval_fixed(TestFunction::MShubert2D, c) as i32
                - TestFunction::MShubert2D.eval_u16(c) as i32)
                .abs();
            worst = worst.max(d);
        }
        assert!(worst <= 1, "worst |fixed - f64| = {worst}");
    }

    #[test]
    fn linear_functions_are_exact() {
        for c in 0..=u16::MAX {
            assert_eq!(
                eval_fixed(TestFunction::F2, c),
                TestFunction::F2.eval_u16(c)
            );
            assert_eq!(
                eval_fixed(TestFunction::F3, c),
                TestFunction::F3.eval_u16(c)
            );
        }
    }

    #[test]
    fn fixed_mshubert_preserves_plateau_optima() {
        use crate::functions::encode_xy;
        assert_eq!(mshubert2d_fixed(0xC2, 0x4A), 65535);
        assert_eq!(mshubert2d_fixed(0xDB, 0x4A), 65535);
        let _ = encode_xy(0, 0);
    }
}
