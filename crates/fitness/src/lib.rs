//! # ga-fitness — test functions and fitness-evaluation modules
//!
//! The paper evaluates its GA IP core on six maximization test
//! functions: three "easy" ones at RT-level (BF6, F2, F3 — Table V,
//! Figs. 8–12) and three "hard" ones in hardware (mBF6_2, mBF7_2,
//! mShubert2D — Tables VII–IX, Figs. 13–16). Fitness is computed by a
//! separate **fitness evaluation module** (FEM) that talks to the GA
//! core over a two-way handshake; the hardware experiments use a
//! **block-ROM lookup implementation** ("this resulted in better
//! operational speed than a combinational implementation") populated
//! offline with the precomputed fitness of every 16-bit encoding.
//!
//! This crate provides:
//!
//! * [`functions`] — the six functions in `f64` reference form and in
//!   the saturating-`u16` form actually stored in the ROMs, plus their
//!   chromosome decodings and globally optimal points (verified by
//!   exhaustive enumeration in tests);
//! * [`fixed`] — a fixed-point CORDIC sine/cosine kernel, the
//!   "combinational implementation" alternative the paper mentions;
//! * [`rom`] — ROM tabulation plus Virtex-II Pro block-RAM accounting
//!   (the 48% / 1% block-memory rows of Table VI fall straight out of
//!   this arithmetic);
//! * [`fem`] — clock-accurate FEM hardware models: [`fem::LookupFem`]
//!   (synchronous ROM + handshake), [`fem::CordicFem`] (iterative
//!   fixed-point evaluation, longer latency), and [`fem::FemBank`] — the
//!   8-way selectable bank of internal/external fitness functions that
//!   is one of the core's headline features.

#![forbid(unsafe_code)]

pub mod apps;
pub mod fem;
pub mod fixed;
pub mod functions;
pub mod rom;

pub use fem::{CordicFem, FemBank, FemSlot, LatencyFem, LookupFem};
pub use functions::TestFunction;
