//! Clock-accurate fitness-evaluation module (FEM) models.
//!
//! The GA core and the FEM speak the paper's two-way handshake
//! (§III-B.7): the core drives `candidate` and raises `fit_request`;
//! the FEM computes, drives `fit_value`, and raises `fit_valid`; the
//! core samples and drops `fit_request`; the FEM drops `fit_valid`.
//!
//! Three FEM implementations are provided, mirroring §III and §IV-B:
//!
//! * [`LookupFem`] — the block-ROM lookup used in the paper's hardware
//!   experiments (1-cycle synchronous ROM read inside a 3-state FSM);
//! * [`CordicFem`] — the "combinational implementation" alternative the
//!   paper rejected for speed: an iterative fixed-point CORDIC datapath
//!   with a ~34-cycle evaluation latency;
//! * [`FemSlot::External`] — pass-through wiring for a fitness module on
//!   another chip/board, exercised through the `fit_value_ext` /
//!   `fit_valid_ext` ports (Table II signals 24–25).
//!
//! [`FemBank`] multiplexes up to **eight** slots under the 3-bit
//! `fitfunc_select` input — the headline "support for multiple fitness
//! functions without re-synthesis" feature.

use hwsim::{Clocked, Reg, SpRom};

use crate::fixed;
use crate::rom::FitnessRom;
use crate::TestFunction;

/// Input bundle sampled by a FEM each cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct FemIn {
    /// GA core's registered fitness request.
    pub fit_request: bool,
    /// Candidate chromosome on the `candidate` bus.
    pub candidate: u16,
}

/// Output bundle of a FEM (registered).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FemOut {
    /// Fitness value bus.
    pub fit_value: u16,
    /// Fitness validity strobe.
    pub fit_valid: bool,
}

/// Common FEM behaviour: a clocked slave on the fitness handshake.
pub trait Fem: Clocked {
    /// Evaluation phase.
    fn eval(&mut self, i: FemIn);
    /// Registered outputs.
    fn out(&self) -> FemOut;
}

// ---------------------------------------------------------------------
// Lookup FEM
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum LookupState {
    #[default]
    Idle,
    /// ROM address presented; data arrives next cycle.
    Fetch,
    /// `fit_valid` asserted; waiting for the request to drop.
    Hold,
}

/// Block-ROM lookup fitness module (the paper's choice for hardware
/// experiments: "a lookup-based implementation has been used ... as this
/// resulted in better operational speed than a combinational
/// implementation").
#[derive(Debug, Clone)]
pub struct LookupFem {
    rom: SpRom,
    state: Reg<LookupState>,
    fit_value: Reg<u16>,
    fit_valid: Reg<bool>,
}

impl LookupFem {
    /// Build from a tabulated ROM image.
    pub fn new(image: FitnessRom) -> Self {
        LookupFem {
            rom: SpRom::from_contents(image.into_contents()),
            state: Reg::default(),
            fit_value: Reg::default(),
            fit_valid: Reg::default(),
        }
    }

    /// Convenience: tabulate one of the paper functions.
    pub fn for_function(f: TestFunction) -> Self {
        Self::new(FitnessRom::tabulate(f))
    }

    /// Block-RAM cost of this FEM on the xc2vp30 (Table VI row 4).
    pub fn bram_cost(&self) -> u32 {
        crate::rom::bram16_count(self.rom.words() as u32, 16)
    }
}

impl Clocked for LookupFem {
    fn reset(&mut self) {
        self.rom.reset();
        self.state.reset_to(LookupState::Idle);
        self.fit_value.reset_to(0);
        self.fit_valid.reset_to(false);
    }

    fn commit(&mut self) {
        self.rom.commit();
        self.state.commit();
        self.fit_value.commit();
        self.fit_valid.commit();
    }
}

impl Fem for LookupFem {
    fn eval(&mut self, i: FemIn) {
        match self.state.get() {
            LookupState::Idle => {
                if i.fit_request {
                    self.rom.eval(i.candidate);
                    self.state.set(LookupState::Fetch);
                }
            }
            LookupState::Fetch => {
                self.fit_value.set(self.rom.dout());
                self.fit_valid.set(true);
                self.state.set(LookupState::Hold);
            }
            LookupState::Hold => {
                if !i.fit_request {
                    self.fit_valid.set(false);
                    self.state.set(LookupState::Idle);
                }
            }
        }
    }

    fn out(&self) -> FemOut {
        FemOut {
            fit_value: self.fit_value.get(),
            fit_valid: self.fit_valid.get(),
        }
    }
}

// ---------------------------------------------------------------------
// CORDIC FEM
// ---------------------------------------------------------------------

/// Cycles an iterative CORDIC evaluation occupies: argument reduction
/// (2) + 30 micro-rotations + scale/accumulate (2). Two-variable
/// functions run their sine/cosine evaluations back to back.
pub fn cordic_latency(f: TestFunction) -> u32 {
    match f {
        TestFunction::F2 | TestFunction::F3 => 2,
        TestFunction::Bf6 | TestFunction::Mbf6_2 => 34,
        TestFunction::Mbf7_2 => 2 * 34 + 2,
        // Ten cosines (five per variable) plus the product/scale stage.
        TestFunction::MShubert2D => 10 * 34 + 4,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum CordicState {
    #[default]
    Idle,
    Busy,
    Hold,
}

/// Iterative fixed-point FEM. The datapath result is computed with the
/// bit-exact [`crate::fixed`] kernels; the FSM occupies the same number
/// of cycles the sequential hardware would (transaction-level timing,
/// bit-true data).
#[derive(Debug, Clone)]
pub struct CordicFem {
    function: TestFunction,
    state: Reg<CordicState>,
    countdown: Reg<u32>,
    fit_value: Reg<u16>,
    fit_valid: Reg<bool>,
}

impl CordicFem {
    /// A CORDIC FEM evaluating `function`.
    pub fn new(function: TestFunction) -> Self {
        CordicFem {
            function,
            state: Reg::default(),
            countdown: Reg::default(),
            fit_value: Reg::default(),
            fit_valid: Reg::default(),
        }
    }

    /// The function this FEM evaluates.
    pub fn function(&self) -> TestFunction {
        self.function
    }
}

impl Clocked for CordicFem {
    fn reset(&mut self) {
        self.state.reset_to(CordicState::Idle);
        self.countdown.reset_to(0);
        self.fit_value.reset_to(0);
        self.fit_valid.reset_to(false);
    }

    fn commit(&mut self) {
        self.state.commit();
        self.countdown.commit();
        self.fit_value.commit();
        self.fit_valid.commit();
    }
}

impl Fem for CordicFem {
    fn eval(&mut self, i: FemIn) {
        match self.state.get() {
            CordicState::Idle => {
                if i.fit_request {
                    self.countdown.set(cordic_latency(self.function));
                    // Latch the datapath result now; it is presented when
                    // the iteration counter expires.
                    self.fit_value
                        .set(fixed::eval_fixed(self.function, i.candidate));
                    self.state.set(CordicState::Busy);
                }
            }
            CordicState::Busy => {
                let c = self.countdown.get();
                if c <= 1 {
                    self.fit_valid.set(true);
                    self.state.set(CordicState::Hold);
                } else {
                    self.countdown.set(c - 1);
                }
            }
            CordicState::Hold => {
                if !i.fit_request {
                    self.fit_valid.set(false);
                    self.state.set(CordicState::Idle);
                }
            }
        }
    }

    fn out(&self) -> FemOut {
        FemOut {
            fit_value: self.fit_value.get(),
            fit_valid: self.fit_valid.get(),
        }
    }
}

// ---------------------------------------------------------------------
// Interconnect latency wrapper (the §II-D EHW classes)
// ---------------------------------------------------------------------

/// Wraps any FEM behind an interconnect with `delay` cycles in each
/// direction — the knob that turns a *complete intrinsic* EHW system
/// (delay 0, intra-chip wires) into a *multichip* (a few cycles of
/// inter-chip I/O) or *multiboard* one (tens of cycles over connectors
/// and cables). §II-D: "the performance of this system is worse than
/// the complete intrinsic EHW, as the communication delays are due to
/// inter-chip wires."
#[derive(Debug, Clone)]
pub struct LatencyFem<F: Fem> {
    inner: F,
    delay: u32,
    /// Pipeline of (cycles-remaining, payload) for the request path.
    req_pipe: Reg<u32>,
    req_live: Reg<bool>,
    req_cand: Reg<u16>,
    /// Delay counter for the response path.
    rsp_pipe: Reg<u32>,
    rsp_live: Reg<bool>,
    rsp_val: Reg<u16>,
    out_valid: Reg<bool>,
    out_value: Reg<u16>,
}

impl<F: Fem> LatencyFem<F> {
    /// Wrap `inner` behind `delay` cycles of wire each way.
    pub fn new(inner: F, delay: u32) -> Self {
        LatencyFem {
            inner,
            delay,
            req_pipe: Reg::default(),
            req_live: Reg::default(),
            req_cand: Reg::default(),
            rsp_pipe: Reg::default(),
            rsp_live: Reg::default(),
            rsp_val: Reg::default(),
            out_valid: Reg::default(),
            out_value: Reg::default(),
        }
    }

    /// The configured one-way delay.
    pub fn delay(&self) -> u32 {
        self.delay
    }
}

impl<F: Fem> Clocked for LatencyFem<F> {
    fn reset(&mut self) {
        self.inner.reset();
        self.req_pipe.reset_to(0);
        self.req_live.reset_to(false);
        self.req_cand.reset_to(0);
        self.rsp_pipe.reset_to(0);
        self.rsp_live.reset_to(false);
        self.rsp_val.reset_to(0);
        self.out_valid.reset_to(false);
        self.out_value.reset_to(0);
    }

    fn commit(&mut self) {
        self.inner.commit();
        self.req_pipe.commit();
        self.req_live.commit();
        self.req_cand.commit();
        self.rsp_pipe.commit();
        self.rsp_live.commit();
        self.rsp_val.commit();
        self.out_valid.commit();
        self.out_value.commit();
    }
}

impl<F: Fem> Fem for LatencyFem<F> {
    fn eval(&mut self, i: FemIn) {
        // --- request path: level-delay the request by `delay` cycles ---
        if i.fit_request && !self.req_live.get() {
            if self.req_pipe.get() >= self.delay {
                self.req_live.set(true);
            } else {
                self.req_pipe.set(self.req_pipe.get() + 1);
            }
            // The candidate bus is held stable by the handshake for the
            // whole transaction, so the delayed copy equals the live one.
            self.req_cand.set(i.candidate);
        }
        if !i.fit_request {
            self.req_live.set(false);
            self.req_pipe.set(0);
        }

        // --- the far-end module --------------------------------------
        let far_req = self.req_live.get();
        self.inner.eval(FemIn {
            fit_request: far_req,
            candidate: self.req_cand.get(),
        });
        let far = self.inner.out();

        // --- response path --------------------------------------------
        // Gate on req_live: the far module's valid can linger from the
        // previous transaction while a new request is already rising.
        if far.fit_valid && self.req_live.get() && !self.rsp_live.get() {
            if self.rsp_pipe.get() >= self.delay {
                self.rsp_live.set(true);
                self.out_valid.set(true);
                // The far module holds fit_value until its request
                // drops, so the live value equals the delayed copy.
                self.out_value.set(far.fit_value);
            } else {
                self.rsp_pipe.set(self.rsp_pipe.get() + 1);
                self.rsp_val.set(far.fit_value);
            }
        }
        if !i.fit_request && self.rsp_live.get() {
            self.out_valid.set(false);
            self.rsp_live.set(false);
            self.rsp_pipe.set(0);
        }
    }

    fn out(&self) -> FemOut {
        FemOut {
            fit_value: self.out_value.get(),
            fit_valid: self.out_valid.get(),
        }
    }
}

// ---------------------------------------------------------------------
// The 8-slot FEM bank
// ---------------------------------------------------------------------

/// One of the eight selectable fitness-function slots.
#[derive(Debug, Clone)]
pub enum FemSlot {
    /// Internal block-ROM lookup module (synthesized with the core).
    Lookup(LookupFem),
    /// Internal iterative CORDIC module.
    Cordic(CordicFem),
    /// External module: the handshake is routed through the
    /// `fit_value_ext`/`fit_valid_ext` ports to another chip or board.
    External,
    /// Unpopulated slot. Requests to an empty slot answer fitness 0
    /// after one cycle so a misconfigured `fitfunc_select` cannot
    /// deadlock the core.
    Empty,
}

/// Extended input bundle for the bank (adds the select and external
/// ports of Table II).
#[derive(Debug, Clone, Copy, Default)]
pub struct FemBankIn {
    /// GA core's fitness request.
    pub fit_request: bool,
    /// Candidate chromosome.
    pub candidate: u16,
    /// 3-bit fitness module select (`fitfunc_Select`, Table II #23).
    pub select: u8,
    /// Fitness value from the external FEM (Table II #24).
    pub ext_value: u16,
    /// Valid strobe from the external FEM (Table II #25).
    pub ext_valid: bool,
}

/// The multiplexed bank of up to eight fitness modules.
#[derive(Debug, Clone)]
pub struct FemBank {
    slots: Vec<FemSlot>,
    /// Registered request forwarded to the external FEM when an
    /// External slot is selected.
    ext_request: Reg<bool>,
    /// Registered outputs for the Empty-slot fallback path.
    empty_valid: Reg<bool>,
}

impl FemBank {
    /// Build a bank; at most eight slots (3-bit select).
    pub fn new(mut slots: Vec<FemSlot>) -> Self {
        assert!(
            slots.len() <= 8,
            "the select bus is 3 bits: at most 8 slots"
        );
        while slots.len() < 8 {
            slots.push(FemSlot::Empty);
        }
        FemBank {
            slots,
            ext_request: Reg::default(),
            empty_valid: Reg::default(),
        }
    }

    /// The request line routed to the external fitness module.
    pub fn ext_request(&self) -> bool {
        self.ext_request.get()
    }

    /// Evaluation phase.
    pub fn eval(&mut self, i: FemBankIn) {
        let sel = (i.select & 0x7) as usize;
        let inner = FemIn {
            fit_request: i.fit_request,
            candidate: i.candidate,
        };
        // Non-selected internal slots see a deasserted request so they
        // drain any in-flight handshake and go idle.
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            let active = idx == sel;
            let slot_in = if active {
                inner
            } else {
                FemIn {
                    fit_request: false,
                    candidate: 0,
                }
            };
            match slot {
                FemSlot::Lookup(f) => f.eval(slot_in),
                FemSlot::Cordic(f) => f.eval(slot_in),
                FemSlot::External | FemSlot::Empty => {}
            }
        }
        // External routing and the empty-slot fallback.
        match &self.slots[sel] {
            FemSlot::External => {
                self.ext_request.set(i.fit_request);
                self.empty_valid.set(false);
            }
            FemSlot::Empty => {
                self.ext_request.set(false);
                self.empty_valid.set(i.fit_request);
            }
            _ => {
                self.ext_request.set(false);
                self.empty_valid.set(false);
            }
        }
    }

    /// Registered outputs, multiplexed by the current select value.
    pub fn out(&self, select: u8, ext_value: u16, ext_valid: bool) -> FemOut {
        let sel = (select & 0x7) as usize;
        match &self.slots[sel] {
            FemSlot::Lookup(f) => f.out(),
            FemSlot::Cordic(f) => f.out(),
            FemSlot::External => FemOut {
                fit_value: ext_value,
                fit_valid: ext_valid,
            },
            FemSlot::Empty => FemOut {
                fit_value: 0,
                fit_valid: self.empty_valid.get(),
            },
        }
    }
}

impl Clocked for FemBank {
    fn reset(&mut self) {
        for slot in &mut self.slots {
            match slot {
                FemSlot::Lookup(f) => f.reset(),
                FemSlot::Cordic(f) => f.reset(),
                _ => {}
            }
        }
        self.ext_request.reset_to(false);
        self.empty_valid.reset_to(false);
    }

    fn commit(&mut self) {
        for slot in &mut self.slots {
            match slot {
                FemSlot::Lookup(f) => f.commit(),
                FemSlot::Cordic(f) => f.commit(),
                _ => {}
            }
        }
        self.ext_request.commit();
        self.empty_valid.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive one handshake transaction against a FEM; returns
    /// (fitness, cycles from request-high to valid-high).
    fn transact(fem: &mut impl Fem, candidate: u16) -> (u16, u32) {
        let mut cycles = 0;
        let mut result = None;
        // Raise the request and hold until valid.
        for _ in 0..2000 {
            fem.eval(FemIn {
                fit_request: true,
                candidate,
            });
            fem.commit();
            cycles += 1;
            let o = fem.out();
            if o.fit_valid {
                result = Some(o.fit_value);
                break;
            }
        }
        let fitness = result.expect("FEM never asserted fit_valid");
        // Drop the request; FEM must drop valid.
        for _ in 0..10 {
            fem.eval(FemIn {
                fit_request: false,
                candidate: 0,
            });
            fem.commit();
            if !fem.out().fit_valid {
                return (fitness, cycles);
            }
        }
        panic!("FEM never deasserted fit_valid");
    }

    #[test]
    fn lookup_fem_returns_rom_value() {
        let mut fem = LookupFem::for_function(TestFunction::F3);
        fem.reset();
        for c in [0u16, 0xFFFF, 0x1234, 0x8000] {
            let (fit, _) = transact(&mut fem, c);
            assert_eq!(fit, TestFunction::F3.eval_u16(c));
        }
    }

    #[test]
    fn lookup_fem_latency_is_three_cycles() {
        let mut fem = LookupFem::for_function(TestFunction::F2);
        fem.reset();
        let (_, cycles) = transact(&mut fem, 0xFF00);
        // Edge 1 registers the ROM address; edge 2 registers data +
        // valid. Synchronous block ROM cannot answer faster.
        assert_eq!(cycles, 2, "address edge + data/valid edge");
    }

    #[test]
    fn cordic_fem_matches_lookup_within_one() {
        let mut cordic = CordicFem::new(TestFunction::Mbf6_2);
        cordic.reset();
        for c in [0u16, 65521, 12345, 0xABCD] {
            let (fit, cycles) = transact(&mut cordic, c);
            let ref_fit = TestFunction::Mbf6_2.eval_u16(c);
            assert!((fit as i32 - ref_fit as i32).abs() <= 1);
            assert!(cycles > 30, "CORDIC must be slower than lookup: {cycles}");
        }
    }

    #[test]
    fn cordic_slower_than_lookup_as_paper_observed() {
        let mut lk = LookupFem::for_function(TestFunction::MShubert2D);
        let mut cd = CordicFem::new(TestFunction::MShubert2D);
        lk.reset();
        cd.reset();
        let (_, c_lookup) = transact(&mut lk, 0xC24A);
        let (_, c_cordic) = transact(&mut cd, 0xC24A);
        assert!(c_cordic > 10 * c_lookup);
    }

    #[test]
    fn bank_switches_functions_without_resynthesis() {
        let mut bank = FemBank::new(vec![
            FemSlot::Lookup(LookupFem::for_function(TestFunction::F2)),
            FemSlot::Lookup(LookupFem::for_function(TestFunction::F3)),
        ]);
        bank.reset();
        let run = |bank: &mut FemBank, select: u8, cand: u16| -> u16 {
            for _ in 0..50 {
                bank.eval(FemBankIn {
                    fit_request: true,
                    candidate: cand,
                    select,
                    ext_value: 0,
                    ext_valid: false,
                });
                bank.commit();
                let o = bank.out(select, 0, false);
                if o.fit_valid {
                    // Drain.
                    for _ in 0..10 {
                        bank.eval(FemBankIn::default());
                        bank.commit();
                        if !bank.out(select, 0, false).fit_valid {
                            break;
                        }
                    }
                    return o.fit_value;
                }
            }
            panic!("bank never answered");
        };
        let c = 0x80FF; // x=128, y=255
        assert_eq!(run(&mut bank, 0, c), TestFunction::F2.eval_u16(c));
        assert_eq!(run(&mut bank, 1, c), TestFunction::F3.eval_u16(c));
    }

    #[test]
    fn external_slot_routes_handshake() {
        let mut bank = FemBank::new(vec![FemSlot::External]);
        bank.reset();
        bank.eval(FemBankIn {
            fit_request: true,
            candidate: 7,
            select: 0,
            ext_value: 0,
            ext_valid: false,
        });
        bank.commit();
        assert!(bank.ext_request(), "request must be forwarded off-chip");
        // External module answers: outputs mirror the ext ports.
        let o = bank.out(0, 4242, true);
        assert_eq!(
            o,
            FemOut {
                fit_value: 4242,
                fit_valid: true
            }
        );
    }

    #[test]
    fn empty_slot_answers_zero_not_deadlock() {
        let mut bank = FemBank::new(vec![]);
        bank.reset();
        for _ in 0..3 {
            bank.eval(FemBankIn {
                fit_request: true,
                candidate: 1,
                select: 5,
                ext_value: 0,
                ext_valid: false,
            });
            bank.commit();
        }
        let o = bank.out(5, 0, false);
        assert!(o.fit_valid);
        assert_eq!(o.fit_value, 0);
    }

    #[test]
    #[should_panic]
    fn more_than_eight_slots_rejected() {
        let _ = FemBank::new((0..9).map(|_| FemSlot::Empty).collect());
    }

    #[test]
    fn latency_fem_returns_correct_values() {
        for delay in [0u32, 1, 4, 16] {
            let mut fem = LatencyFem::new(LookupFem::for_function(TestFunction::F3), delay);
            fem.reset();
            for c in [0u16, 0xFFFF, 0x1234] {
                let (fit, _) = transact(&mut fem, c);
                assert_eq!(
                    fit,
                    TestFunction::F3.eval_u16(c),
                    "delay {delay} cand {c:#06x}"
                );
            }
        }
    }

    #[test]
    fn latency_fem_cost_grows_with_delay() {
        let time = |delay: u32| -> u32 {
            let mut fem = LatencyFem::new(LookupFem::for_function(TestFunction::F2), delay);
            fem.reset();
            transact(&mut fem, 0x1234).1
        };
        let complete = time(0);
        let multichip = time(4);
        let multiboard = time(40);
        assert!(multichip > complete);
        assert!(
            multiboard > multichip + 60,
            "two-way 40-cycle wire: {multiboard} vs {multichip}"
        );
    }

    #[test]
    fn latency_fem_back_to_back_transactions() {
        let mut fem = LatencyFem::new(LookupFem::for_function(TestFunction::F3), 3);
        fem.reset();
        for c in 0..20u16 {
            let (fit, _) = transact(&mut fem, c * 37);
            assert_eq!(fit, TestFunction::F3.eval_u16(c * 37));
        }
    }
}
