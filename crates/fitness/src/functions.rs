//! The paper's six maximization test functions.
//!
//! All chromosomes are 16 bits. Single-variable functions decode the
//! full word (`x ∈ 0..=65535`); two-variable functions split it into
//! `x = chrom[15:8]` and `y = chrom[7:0]` (the paper: "the two variable
//! experiments have equal ranges (0 to 255)"). Arguments to the
//! trigonometric functions are **integer radians**, as in Haupt & Haupt.
//!
//! Fitness values are unsigned 16-bit. The `f64` reference forms are
//! quantized by round-and-saturate; the saturation is semantically
//! important for mShubert2D, where the plateau of inputs whose scaled
//! value exceeds 65535 forms the set of "global optimal solutions" the
//! paper counts (it reports 48; exhaustive enumeration of this
//! implementation finds 166 — both of the paper's named optima,
//! (x₁,x₂) = (C2,4A)₁₆ and (DB,4A)₁₆, lie on the plateau; see
//! EXPERIMENTS.md).

/// Decode a 16-bit chromosome into two 8-bit variables `(x, y)`:
/// x = high byte, y = low byte.
#[inline]
pub fn decode_xy(chrom: u16) -> (u8, u8) {
    ((chrom >> 8) as u8, (chrom & 0xFF) as u8)
}

/// Encode two 8-bit variables into a 16-bit chromosome.
#[inline]
pub fn encode_xy(x: u8, y: u8) -> u16 {
    ((x as u16) << 8) | y as u16
}

/// Round-and-saturate an `f64` fitness into the 16-bit fitness bus.
#[inline]
pub fn quantize(v: f64) -> u16 {
    if v.is_nan() {
        return 0;
    }
    v.round().clamp(0.0, 65535.0) as u16
}

/// Test Function #1 (§IV-A): Binary F6,
/// `BF6(x) = ((x² + x)·cos(x)/4 000 000) + 3200`.
/// "A very difficult test function that has numerous local maxima."
pub fn bf6(x: u16) -> f64 {
    let xf = x as f64;
    ((xf * xf + xf) * xf.cos() / 4_000_000.0) + 3200.0
}

/// Test Function #2 (§IV-A): the mini-max function
/// `F2(x, y) = 8x − 4y + 1020` (maximize x, minimize y; optimum 3060).
pub fn f2(x: u8, y: u8) -> f64 {
    8.0 * x as f64 - 4.0 * y as f64 + 1020.0
}

/// Test Function #3 (§IV-A): the maxi-max function
/// `F3(x, y) = 8x + 4y` (maximize both; optimum 3060).
pub fn f3(x: u8, y: u8) -> f64 {
    8.0 * x as f64 + 4.0 * y as f64
}

/// Modified and scaled Binary F6 (§IV-B):
/// `mBF6_2(x) = 4096 + ((x² + x)·cos(x))/2^20`.
pub fn mbf6_2(x: u16) -> f64 {
    let xf = x as f64;
    4096.0 + (xf * xf + xf) * xf.cos() / (1u64 << 20) as f64
}

/// Modified Binary F7 (§IV-B):
/// `mBF7_2(x, y) = 32768 + 56·(x·sin(4x) + 1.25·y·sin(2y))`.
pub fn mbf7_2(x: u8, y: u8) -> f64 {
    let xf = x as f64;
    let yf = y as f64;
    32768.0 + 56.0 * (xf * (4.0 * xf).sin() + 1.25 * yf * (2.0 * yf).sin())
}

/// The 1-D Shubert sum `Σ_{i=1..5} i·cos((i+1)·x + i)`.
pub fn shubert1d(x: f64) -> f64 {
    (1..=5)
        .map(|i| i as f64 * ((i as f64 + 1.0) * x + i as f64).cos())
        .sum()
}

/// Modified 2-D Shubert function (§IV-B):
/// `mShubert2D(x₁, x₂) = 65535 − 174·(150 + Π_{k=1,2} Σ_{i=1..5} i·cos((i+1)·x_k + i))`,
/// evaluated with saturating 16-bit output.
pub fn mshubert2d(x1: u8, x2: u8) -> f64 {
    let s = shubert1d(x1 as f64) * shubert1d(x2 as f64);
    65535.0 - 174.0 * (150.0 + s)
}

/// The test-function catalog: everything the bench harness and the FEM
/// bank need to know about one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestFunction {
    /// Binary F6 (RT-level, Table V rows 1–5).
    Bf6,
    /// Mini-max F2 (RT-level, Table V rows 6–9).
    F2,
    /// Maxi-max F3 (RT-level, Table V row 10).
    F3,
    /// Modified/scaled Binary F6 (hardware, Table VII).
    Mbf6_2,
    /// Modified Binary F7 (hardware, Table VIII).
    Mbf7_2,
    /// Modified 2-D Shubert (hardware, Table IX).
    MShubert2D,
}

impl TestFunction {
    /// All six functions in paper order.
    pub const ALL: [TestFunction; 6] = [
        TestFunction::Bf6,
        TestFunction::F2,
        TestFunction::F3,
        TestFunction::Mbf6_2,
        TestFunction::Mbf7_2,
        TestFunction::MShubert2D,
    ];

    /// Name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            TestFunction::Bf6 => "BF6",
            TestFunction::F2 => "F2",
            TestFunction::F3 => "F3",
            TestFunction::Mbf6_2 => "mBF6_2",
            TestFunction::Mbf7_2 => "mBF7_2",
            TestFunction::MShubert2D => "mShubert2D",
        }
    }

    /// Reference (`f64`) evaluation of a 16-bit chromosome.
    pub fn eval_f64(self, chrom: u16) -> f64 {
        match self {
            TestFunction::Bf6 => bf6(chrom),
            TestFunction::Mbf6_2 => mbf6_2(chrom),
            TestFunction::F2 => {
                let (x, y) = decode_xy(chrom);
                f2(x, y)
            }
            TestFunction::F3 => {
                let (x, y) = decode_xy(chrom);
                f3(x, y)
            }
            TestFunction::Mbf7_2 => {
                let (x, y) = decode_xy(chrom);
                mbf7_2(x, y)
            }
            TestFunction::MShubert2D => {
                let (x1, x2) = decode_xy(chrom);
                mshubert2d(x1, x2)
            }
        }
    }

    /// ROM-form (quantized u16) evaluation — what the block-ROM lookup
    /// FEM stores for this chromosome.
    pub fn eval_u16(self, chrom: u16) -> u16 {
        quantize(self.eval_f64(chrom))
    }

    /// 32-bit split evaluation for the ganged dual-core system (§III-D):
    /// the shared `Fem32` sees the concatenated `{MSB, LSB}` candidate
    /// and scores each 16-bit half with the ROM-form function, averaging
    /// so the result still fits the 16-bit fitness bus. The same shape
    /// as the split-threshold algebra of `ga_core::scaling` — each half
    /// contributes independently, matching the per-half operator rates.
    pub fn eval_u32_split(self, chrom: u32) -> u16 {
        let msb = (chrom >> 16) as u16;
        let lsb = (chrom & 0xFFFF) as u16;
        ((self.eval_u16(msb) as u32 + self.eval_u16(lsb) as u32) / 2) as u16
    }

    /// Globally maximal quantized fitness, by exhaustive enumeration.
    pub fn global_max(self) -> u16 {
        (0..=u16::MAX).map(|c| self.eval_u16(c)).max().unwrap()
    }

    /// One chromosome achieving the global maximum (lowest such encoding).
    pub fn global_argmax(self) -> u16 {
        let best = self.global_max();
        (0..=u16::MAX).find(|&c| self.eval_u16(c) == best).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_roundtrip() {
        for chrom in [0u16, 0xFFFF, 0x1234, 0xAB00, 0x00CD] {
            let (x, y) = decode_xy(chrom);
            assert_eq!(encode_xy(x, y), chrom);
        }
    }

    #[test]
    fn quantize_saturates_and_rounds() {
        assert_eq!(quantize(-5.0), 0);
        assert_eq!(quantize(0.49), 0);
        assert_eq!(quantize(0.5), 1);
        assert_eq!(quantize(65534.6), 65535);
        assert_eq!(quantize(1e9), 65535);
        assert_eq!(quantize(f64::NAN), 0);
    }

    #[test]
    fn u32_split_averages_the_halves() {
        for f in TestFunction::ALL {
            // Equal halves: the average IS the half's score.
            assert_eq!(f.eval_u32_split(0x1234_1234), f.eval_u16(0x1234));
            // Mixed halves: the integer mean of the two half scores.
            let want = ((f.eval_u16(0xFFFF) as u32 + f.eval_u16(0x0000) as u32) / 2) as u16;
            assert_eq!(f.eval_u32_split(0xFFFF_0000), want);
        }
    }

    #[test]
    fn bf6_optimum_matches_paper() {
        // Paper: "exactly one global maxima with a value of 4271 when
        // x = 65522". Exhaustive evaluation of the formula as printed
        // gives 4272 at x = 65521 — a one-ULP disagreement in both value
        // and argument that we attribute to the authors' fixed-point
        // tabulation; we assert our exhaustive ground truth.
        assert_eq!(TestFunction::Bf6.global_max(), 4272);
        assert_eq!(TestFunction::Bf6.global_argmax(), 65521);
        // At the paper's claimed argument the printed formula gives a
        // visibly lower value (3830): the paper's x = 65522 is an
        // off-by-one — the true peak (matching their 4271 ± 1 value) is
        // one step to the left.
        assert_eq!(TestFunction::Bf6.eval_u16(65522), 3830);
    }

    #[test]
    fn f2_optimum_is_minimax() {
        // Maximize x, minimize y.
        assert_eq!(TestFunction::F2.global_max(), 3060);
        let best = TestFunction::F2.global_argmax();
        let (x, y) = decode_xy(best);
        assert_eq!((x, y), (255, 0));
        // Worst case is non-negative (no signed wrap in the ROM).
        assert_eq!(TestFunction::F2.eval_u16(encode_xy(0, 255)), 0);
    }

    #[test]
    fn f3_optimum_is_maximax() {
        assert_eq!(TestFunction::F3.global_max(), 3060);
        let (x, y) = decode_xy(TestFunction::F3.global_argmax());
        assert_eq!((x, y), (255, 255));
    }

    #[test]
    fn mbf6_2_optimum_matches_paper() {
        // Paper: single global optimum at x = 65521 with value 8183; the
        // formula as printed gives 8184 at the same x (rounding).
        assert_eq!(TestFunction::Mbf6_2.global_argmax(), 65521);
        let max = TestFunction::Mbf6_2.global_max();
        assert!((8183..=8184).contains(&max), "max = {max}");
        // The paper's best-found-by-GA solution evaluates close to its
        // reported fitness of 8135.
        let found = TestFunction::Mbf6_2.eval_u16(65345);
        assert!((8130..=8140).contains(&found), "fitness(65345) = {found}");
    }

    #[test]
    fn mbf7_2_optimum_argmax_matches_paper() {
        // Paper: single optimum at x = 247, y = 249 valued 63904. The
        // printed formula gives the same argmax with value 63995.
        let best = TestFunction::Mbf7_2.global_argmax();
        assert_eq!(decode_xy(best), (247, 249));
        let max = TestFunction::Mbf7_2.global_max();
        assert!((63900..=64000).contains(&max), "max = {max}");
        // The paper's best-found candidate 0xECFF ⇒ (x,y) = (EC,FF)₁₆.
        // (Its reported fitness 61496 for y=FF,x=EC.)
        let v = TestFunction::Mbf7_2.eval_u16(0xECFF);
        assert!(v > 60_000, "fitness(ECFF) = {v}");
    }

    #[test]
    fn mshubert_plateau_contains_papers_optima() {
        assert_eq!(TestFunction::MShubert2D.global_max(), 65535);
        // Both globally optimal solutions the paper reports finding:
        // (x1,y1) = (C2,4A) and (x2,y2) = (DB,4A).
        assert_eq!(
            TestFunction::MShubert2D.eval_u16(encode_xy(0xC2, 0x4A)),
            65535
        );
        assert_eq!(
            TestFunction::MShubert2D.eval_u16(encode_xy(0xDB, 0x4A)),
            65535
        );
    }

    #[test]
    fn mshubert_plateau_count() {
        // The paper reports 48 global optima; the printed formula with
        // u16 saturation yields a plateau of 166 encodings. Assert the
        // measured count so any change to the formula is caught.
        let count = (0..=u16::MAX)
            .filter(|&c| TestFunction::MShubert2D.eval_u16(c) == 65535)
            .count();
        assert_eq!(count, 166);
    }

    #[test]
    fn all_functions_fit_u16_everywhere() {
        for f in TestFunction::ALL {
            for c in (0..=u16::MAX).step_by(97) {
                let v = f.eval_f64(c);
                assert!(!v.is_nan());
                let _ = f.eval_u16(c); // must not panic
            }
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = TestFunction::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names, ["BF6", "F2", "F3", "mBF6_2", "mBF7_2", "mShubert2D"]);
    }

    #[test]
    fn shubert1d_range_sanity() {
        // The 1-D Shubert sum is bounded by Σi = 15 in magnitude.
        for x in 0..=255 {
            let s = shubert1d(x as f64);
            assert!(s.abs() <= 15.0 + 1e-9);
        }
    }
}
