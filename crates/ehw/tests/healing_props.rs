//! Property tests of the VRC healing contract.
//!
//! Two guarantees back the heal campaign and the serve-layer
//! `HealReport`: (1) `healing_fitness` is maximal *exactly* when the
//! faulted fabric reproduces the target on all 16 truth-table rows —
//! so `best_fitness == PERFECT_FITNESS` is a sound "healed" verdict,
//! never an artifact of the scoring scale; (2) for every shipped
//! healing target, each of the 48 single-cell faults is either
//! genuinely healable (some configuration restores the target) or on
//! the explicitly documented unhealable list — there are no
//! surprise-unhealable faults a served heal job could silently fail
//! on.

use ga_ehw::{healable, healing_fitness, CellFn, Fault, Vrc, PERFECT_FITNESS, SHIPPED_TARGETS};
use proptest::prelude::*;

/// Decode an index 0..48 into the corresponding single-cell fault
/// (same order as `Fault::all_single_cell`).
fn fault_at(idx: usize) -> Fault {
    let cell = idx / 6;
    match idx % 6 {
        0 => Fault::StuckAt { cell, value: false },
        1 => Fault::StuckAt { cell, value: true },
        k => Fault::WrongFn {
            cell,
            actual: CellFn::ALL[k - 2],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `healing_fitness` hits `PERFECT_FITNESS` iff the faulted truth
    /// table equals the target, and otherwise scores exactly
    /// 4095 × (matching rows) — the row-proportional scale the
    /// selection pressure and the serve-layer `residual_error` both
    /// assume.
    #[test]
    fn fitness_is_maximal_iff_all_sixteen_rows_match(
        config in any::<u16>(),
        target in any::<u16>(),
        fault_idx in 0usize..49,
    ) {
        // Index 48 doubles as the fault-free case.
        let fault = (fault_idx < 48).then(|| fault_at(fault_idx));
        let got = Vrc { config, fault }.truth_table();
        let fitness = healing_fitness(config, target, fault);

        let matches = (!(got ^ target)).count_ones() as u16;
        prop_assert_eq!(fitness, matches * 4095, "fitness is row-proportional");
        prop_assert_eq!(
            fitness == PERFECT_FITNESS,
            got == target,
            "maximal fitness must coincide exactly with a 16/16-row match"
        );
        // A perfect score is reachable at all: the fault-free fabric
        // scores perfectly against its own truth table.
        if fault.is_none() {
            prop_assert_eq!(healing_fitness(config, got, None), PERFECT_FITNESS);
        }
    }
}

/// The documented unhealable faults per shipped target, in
/// `Fault::all_single_cell` order. Everything *not* listed here is
/// healable — some configuration of the faulted fabric reproduces the
/// target exactly — which is what entitles the heal campaign to demand
/// a 100% heal rate over the complement.
///
/// The lists are not arbitrary: a stuck output on a cell the target
/// depends on non-trivially kills both polarities at once (e.g. every
/// `stuck0@k`/`stuck1@k` pair below), and wrong-function corruptions
/// are unhealable only where no re-wiring of the remaining seven cells
/// can compensate for the lost function at that position.
fn documented_unhealable(name: &str) -> &'static [&'static str] {
    match name {
        "mix3" => &[
            "stuck0@0", "stuck1@0", "and@0", "or@0", "nand@0", "stuck0@1", "stuck1@1", "and@1",
            "xor@1", "nand@1", "stuck0@4", "stuck1@4", "or@4", "xor@4", "stuck0@7", "stuck1@7",
        ],
        "mix7" => &[
            "stuck0@0", "stuck1@0", "and@0", "nand@0", "stuck0@1", "stuck1@1", "or@1", "and@2",
            "xor@2", "nand@2", "stuck0@3", "stuck1@3", "and@3", "or@3", "nand@3", "stuck0@4",
            "stuck1@4", "or@4", "stuck0@5", "stuck1@5", "or@5", "xor@5", "stuck0@6", "stuck1@6",
            "stuck0@7", "stuck1@7", "and@7",
        ],
        "inv5" => &[
            "stuck0@2", "stuck1@2", "and@2", "or@2", "nand@2", "stuck0@3", "stuck1@3", "and@3",
            "or@3", "xor@3", "stuck0@5", "stuck1@5", "or@5", "xor@5", "stuck0@6", "stuck1@6",
            "stuck0@7", "stuck1@7", "or@7",
        ],
        other => panic!("undocumented shipped target '{other}'"),
    }
}

/// Exhaustive healability census: for each shipped target, the oracle's
/// unhealable set must equal the documented list fault-for-fault.
#[test]
fn every_single_cell_fault_is_healable_or_documented() {
    for (name, config) in SHIPPED_TARGETS {
        let target = Vrc::new(config).truth_table();
        let unhealable: Vec<String> = Fault::all_single_cell()
            .into_iter()
            .filter(|&fault| !healable(target, fault))
            .map(|fault| fault.wire_name())
            .collect();
        let documented = documented_unhealable(name);
        assert_eq!(
            unhealable, documented,
            "{name} (tt {target:#06x}): oracle unhealable set drifted from the documented list"
        );
    }
}
