//! # ga-ehw — evolvable-hardware substrate for adaptive healing
//!
//! The paper's GA core "has been used as a search engine for real-time
//! adaptive healing" and as a building block of the self-reconfigurable
//! analog array that compensates extreme-temperature effects on VLSI
//! electronics (§I, §V). The actual SRAA is proprietary JPL hardware, so
//! this crate provides the canonical digital stand-in used throughout
//! the intrinsic-EHW literature (Thompson; Kajitani et al.; Sekanina):
//! a **virtual reconfigurable circuit** (VRC) — a small array of
//! function-configurable logic cells whose 16-bit configuration
//! bitstring is exactly one GA chromosome.
//!
//! The healing experiment: a target Boolean function is realized by
//! some configuration; a radiation-style fault is injected into one
//! cell (stuck output or corrupted function LUT); the GA core then
//! searches for a new configuration that restores the target behaviour
//! *around* the fault — intrinsic evolution, with the VRC evaluated as
//! the fitness module.

#![forbid(unsafe_code)]

pub mod fem;
pub mod vrc;

pub use fem::VrcFem;
pub use vrc::{
    healable, healing_fitness, CellFn, Fault, TruthTable, Vrc, PERFECT_FITNESS, SHIPPED_TARGETS,
};
