//! The virtual reconfigurable circuit and its fault model.
//!
//! Topology (fixed routing, function-programmable cells — the standard
//! VRC construction):
//!
//! ```text
//! inputs a b c d
//!   layer 1: cell0(a,b)  cell1(b,c)  cell2(c,d)  cell3(d,a) → w x y z
//!   layer 2: cell4(w,x)  cell5(y,z)                         → u v
//!   layer 3: cell6(u,v)                                     → t
//!   output : cell7 post-processor on (t, u)                 → out
//! ```
//!
//! Each of the 8 cells takes a 2-bit function code (AND / OR / XOR /
//! NAND — a functionally complete set), so a full configuration is
//! exactly the GA core's 16-bit chromosome.

/// Cell function codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CellFn {
    /// `00`: AND.
    And = 0,
    /// `01`: OR.
    Or = 1,
    /// `10`: XOR.
    Xor = 2,
    /// `11`: NAND.
    Nand = 3,
}

impl CellFn {
    /// Every cell function, code order.
    pub const ALL: [CellFn; 4] = [CellFn::And, CellFn::Or, CellFn::Xor, CellFn::Nand];

    /// Decode a 2-bit code.
    pub fn from_code(code: u8) -> Self {
        match code & 0b11 {
            0 => CellFn::And,
            1 => CellFn::Or,
            2 => CellFn::Xor,
            _ => CellFn::Nand,
        }
    }

    /// Apply the function.
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            CellFn::And => a & b,
            CellFn::Or => a | b,
            CellFn::Xor => a ^ b,
            CellFn::Nand => !(a & b),
        }
    }

    /// Apply the function across all 16 input patterns at once: each
    /// operand packs one signal's value per pattern (bit `i` = the
    /// signal on pattern `i`), so one word op evaluates the whole
    /// truth-table column.
    pub fn apply_tt(self, a: u16, b: u16) -> u16 {
        match self {
            CellFn::And => a & b,
            CellFn::Or => a | b,
            CellFn::Xor => a ^ b,
            CellFn::Nand => !(a & b),
        }
    }

    /// Stable lowercase name used in the JSONL heal-job schema.
    pub fn name(self) -> &'static str {
        match self {
            CellFn::And => "and",
            CellFn::Or => "or",
            CellFn::Xor => "xor",
            CellFn::Nand => "nand",
        }
    }

    /// Parse a function name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|f| f.name().eq_ignore_ascii_case(s))
    }
}

/// A radiation-style fault in one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The cell's output is stuck at a constant (SEU latched in the
    /// output buffer).
    StuckAt {
        /// Faulted cell index (0–7).
        cell: usize,
        /// Stuck output value.
        value: bool,
    },
    /// The cell's function code is corrupted to a fixed wrong value
    /// (SEU in the configuration memory).
    WrongFn {
        /// Faulted cell index (0–7).
        cell: usize,
        /// The function the cell actually performs.
        actual: CellFn,
    },
}

impl Fault {
    /// The faulted cell's index (0–7).
    pub fn cell(&self) -> usize {
        match *self {
            Fault::StuckAt { cell, .. } | Fault::WrongFn { cell, .. } => cell,
        }
    }

    /// Stable wire encoding used by the JSONL heal-job schema:
    /// `stuck0@<cell>`, `stuck1@<cell>`, or `<fn>@<cell>` (e.g.
    /// `nand@5` for a function code corrupted to NAND).
    pub fn wire_name(&self) -> String {
        match *self {
            Fault::StuckAt { cell, value } => {
                format!("stuck{}@{cell}", u8::from(value))
            }
            Fault::WrongFn { cell, actual } => format!("{}@{cell}", actual.name()),
        }
    }

    /// Parse the [`wire_name`](Self::wire_name) encoding. Rejects cell
    /// indices outside 0–7 and unknown fault kinds.
    pub fn parse_wire(s: &str) -> Option<Fault> {
        let (kind, cell) = s.split_once('@')?;
        let cell: usize = cell.parse().ok()?;
        if cell >= 8 {
            return None;
        }
        match kind {
            "stuck0" => Some(Fault::StuckAt { cell, value: false }),
            "stuck1" => Some(Fault::StuckAt { cell, value: true }),
            other => Some(Fault::WrongFn {
                cell,
                actual: CellFn::parse(other)?,
            }),
        }
    }

    /// Every single-cell fault the model can express: per cell, both
    /// stuck-at polarities plus all four wrong-function corruptions
    /// (8 cells × 6 = 48 faults). Campaign grids and the healability
    /// property tests sweep this list.
    pub fn all_single_cell() -> Vec<Fault> {
        let mut out = Vec::with_capacity(48);
        for cell in 0..8 {
            for value in [false, true] {
                out.push(Fault::StuckAt { cell, value });
            }
            for actual in CellFn::ALL {
                out.push(Fault::WrongFn { cell, actual });
            }
        }
        out
    }
}

/// A 4-input truth table: bit `i` is the output for input pattern `i`.
pub type TruthTable = u16;

/// The virtual reconfigurable circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vrc {
    /// 16-bit configuration: cell `k`'s function code is bits
    /// `[2k+1 : 2k]`.
    pub config: u16,
    /// Injected fault, if any.
    pub fault: Option<Fault>,
}

impl Vrc {
    /// A healthy circuit with the given configuration.
    pub fn new(config: u16) -> Self {
        Vrc {
            config,
            fault: None,
        }
    }

    /// Inject a fault (replacing any existing one).
    pub fn with_fault(mut self, fault: Fault) -> Self {
        assert!(fault.cell() < 8, "the VRC has 8 cells");
        self.fault = Some(fault);
        self
    }

    /// Function programmed into cell `k` (before faults).
    pub fn cell_fn(&self, k: usize) -> CellFn {
        CellFn::from_code((self.config >> (2 * k)) as u8)
    }

    /// Evaluate one cell, honoring the fault model.
    fn cell(&self, k: usize, a: bool, b: bool) -> bool {
        match self.fault {
            Some(Fault::StuckAt { cell, value }) if cell == k => value,
            Some(Fault::WrongFn { cell, actual }) if cell == k => actual.apply(a, b),
            _ => self.cell_fn(k).apply(a, b),
        }
    }

    /// Evaluate the circuit on a 4-bit input pattern.
    pub fn eval(&self, pattern: u8) -> bool {
        let a = pattern & 1 != 0;
        let b = pattern & 2 != 0;
        let c = pattern & 4 != 0;
        let d = pattern & 8 != 0;
        let w = self.cell(0, a, b);
        let x = self.cell(1, b, c);
        let y = self.cell(2, c, d);
        let z = self.cell(3, d, a);
        let u = self.cell(4, w, x);
        let v = self.cell(5, y, z);
        let t = self.cell(6, u, v);
        self.cell(7, t, u)
    }

    /// Evaluate one cell across all 16 patterns at once (operands are
    /// truth-table columns, bit `i` = the signal on pattern `i`).
    fn cell_tt(&self, k: usize, a: u16, b: u16) -> u16 {
        match self.fault {
            Some(Fault::StuckAt { cell, value }) if cell == k => {
                if value {
                    0xFFFF
                } else {
                    0x0000
                }
            }
            Some(Fault::WrongFn { cell, actual }) if cell == k => actual.apply_tt(a, b),
            _ => self.cell_fn(k).apply_tt(a, b),
        }
    }

    /// The circuit's full truth table, computed bit-parallel: the four
    /// input columns are constants (input `a` is high on odd patterns
    /// ⇒ 0xAAAA, and so on), and each cell is one word operation. This
    /// is what makes exhaustive 65 536-configuration sweeps (fitness
    /// ROM tabulation, healability proofs) cheap.
    pub fn truth_table(&self) -> TruthTable {
        const A: u16 = 0xAAAA; // pattern bit 0
        const B: u16 = 0xCCCC; // pattern bit 1
        const C: u16 = 0xF0F0; // pattern bit 2
        const D: u16 = 0xFF00; // pattern bit 3
        let w = self.cell_tt(0, A, B);
        let x = self.cell_tt(1, B, C);
        let y = self.cell_tt(2, C, D);
        let z = self.cell_tt(3, D, A);
        let u = self.cell_tt(4, w, x);
        let v = self.cell_tt(5, y, z);
        let t = self.cell_tt(6, u, v);
        self.cell_tt(7, t, u)
    }
}

/// Healing fitness: how well configuration `config` reproduces `target`
/// on the faulted fabric. Each of the 16 truth-table rows is worth
/// 4095, so a perfect match scores 65 520 (a near-full-scale 16-bit
/// fitness, keeping proportionate selection well conditioned).
pub fn healing_fitness(config: u16, target: TruthTable, fault: Option<Fault>) -> u16 {
    let vrc = Vrc { config, fault };
    let got = vrc.truth_table();
    let matches = (!(got ^ target)).count_ones() as u16;
    matches * 4095
}

/// Fitness of a perfect healing (all 16 rows correct).
pub const PERFECT_FITNESS: u16 = 16 * 4095;

/// The shipped healing targets: `(name, healthy configuration)` pairs
/// whose fault-free truth tables are the functions the heal campaign
/// and the healability property tests re-evolve. Chosen for diverse
/// cell mixes (no cell function repeated fabric-wide) and non-trivial
/// truth tables.
pub const SHIPPED_TARGETS: [(&str, u16); 3] = [
    // The healing-demo configuration (truth table 0x9B9B).
    ("mix3", 0x1B26),
    // A fabric using all four cell functions (truth table 0xAE7F).
    ("mix7", 0x6C99),
    // An inverting-heavy fabric, three NAND cells (truth table 0x05F0).
    ("inv5", 0xB1E7),
];

/// Exhaustive healability oracle: is there *any* configuration whose
/// faulted truth table matches `target`? The bit-parallel
/// [`Vrc::truth_table`] makes the 65 536-configuration sweep cheap, so
/// this is the ground truth the GA heal rate is measured against.
pub fn healable(target: TruthTable, fault: Fault) -> bool {
    (0..=u16::MAX).any(|config| {
        Vrc {
            config,
            fault: Some(fault),
        }
        .truth_table()
            == target
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_functions() {
        assert!(CellFn::And.apply(true, true));
        assert!(!CellFn::And.apply(true, false));
        assert!(CellFn::Or.apply(true, false));
        assert!(CellFn::Xor.apply(true, false));
        assert!(!CellFn::Xor.apply(true, true));
        assert!(CellFn::Nand.apply(false, false));
        assert!(!CellFn::Nand.apply(true, true));
    }

    #[test]
    fn config_decoding_per_cell() {
        // config = 0b..._01_00: cell0 = AND, cell1 = OR, cell7 = NAND.
        let cfg = 0b11_00_00_00_00_00_01_00u16;
        let vrc = Vrc::new(cfg);
        assert_eq!(vrc.cell_fn(0), CellFn::And);
        assert_eq!(vrc.cell_fn(1), CellFn::Or);
        assert_eq!(vrc.cell_fn(7), CellFn::Nand);
    }

    #[test]
    fn all_and_circuit_is_conjunction_like() {
        // All cells AND: output for all-ones input must be 1 via the
        // final stage; for all-zeros it is 0.
        let vrc = Vrc::new(0x0000);
        assert!(vrc.eval(0b1111));
        assert!(!vrc.eval(0b0000));
    }

    #[test]
    fn stuck_fault_changes_behaviour() {
        let vrc = Vrc::new(0x0000);
        let faulty = vrc.with_fault(Fault::StuckAt {
            cell: 6,
            value: false,
        });
        // Cell 6 feeds cell 7 (AND): output forced low everywhere
        // except through the u path... with all-AND config, out = t & u
        // and t stuck 0 ⇒ out = 0 everywhere.
        assert_eq!(faulty.truth_table(), 0);
        assert_ne!(vrc.truth_table(), 0);
    }

    #[test]
    fn wrong_fn_fault_applies_the_wrong_function() {
        // With the all-AND configuration a single corrupted cell is
        // masked (out is 1 only on the all-ones row either way) — fault
        // masking is itself worth asserting.
        let masked = Vrc::new(0x0000).with_fault(Fault::WrongFn {
            cell: 0,
            actual: CellFn::Or,
        });
        assert_eq!(masked.truth_table(), Vrc::new(0x0000).truth_table());
        // On a mixed configuration the same corruption is observable.
        let healthy = Vrc::new(0x1B26);
        let faulty = healthy.with_fault(Fault::WrongFn {
            cell: 0,
            actual: CellFn::Nand,
        });
        assert_eq!(healthy.truth_table(), 0x9B9B);
        assert_eq!(faulty.truth_table(), 0x8B8B);
    }

    #[test]
    fn healing_fitness_is_full_scale_for_self_target() {
        for cfg in [0u16, 0xFFFF, 0x1234, 0xBEEF] {
            let target = Vrc::new(cfg).truth_table();
            assert_eq!(healing_fitness(cfg, target, None), PERFECT_FITNESS);
        }
    }

    #[test]
    fn healing_fitness_counts_matching_rows() {
        let target = Vrc::new(0x0000).truth_table();
        // A config differing in exactly the all-ones row scores 15 rows.
        let mut found = false;
        for cfg in 0..=u16::MAX {
            let tt = Vrc::new(cfg).truth_table();
            if (tt ^ target).count_ones() == 1 {
                assert_eq!(healing_fitness(cfg, target, None), 15 * 4095);
                found = true;
                break;
            }
        }
        assert!(found, "no single-row-off configuration exists?");
    }

    #[test]
    fn vrc_expressiveness_census() {
        // How many distinct truth tables can the fabric express? This
        // pins the substrate's behaviour: any change to routing or cell
        // functions shows up here.
        let mut seen = std::collections::HashSet::new();
        for cfg in 0..=u16::MAX {
            seen.insert(Vrc::new(cfg).truth_table());
        }
        // Must be rich (hundreds of functions) but obviously ≤ 2^16.
        assert!(seen.len() > 100, "only {} distinct functions", seen.len());
        // Record the exact census to catch accidental changes.
        assert_eq!(seen.len(), 2339);
    }

    #[test]
    fn bit_parallel_truth_table_matches_per_pattern_eval() {
        // The word-parallel truth table must agree with the reference
        // per-pattern evaluator on every fault variant.
        let faults = {
            let mut f: Vec<Option<Fault>> =
                Fault::all_single_cell().into_iter().map(Some).collect();
            f.push(None);
            f
        };
        for cfg in (0..=u16::MAX).step_by(257) {
            for &fault in &faults {
                let vrc = Vrc { config: cfg, fault };
                let mut reference = 0u16;
                for pattern in 0..16u8 {
                    if vrc.eval(pattern) {
                        reference |= 1 << pattern;
                    }
                }
                assert_eq!(
                    vrc.truth_table(),
                    reference,
                    "cfg {cfg:04X} fault {fault:?}"
                );
            }
        }
    }

    #[test]
    fn fault_wire_codec_roundtrips() {
        let all = Fault::all_single_cell();
        assert_eq!(all.len(), 48);
        for fault in all {
            let name = fault.wire_name();
            assert_eq!(Fault::parse_wire(&name), Some(fault), "{name}");
        }
        assert_eq!(
            Fault::parse_wire("stuck1@2"),
            Some(Fault::StuckAt {
                cell: 2,
                value: true
            })
        );
        assert_eq!(
            Fault::parse_wire("nand@7"),
            Some(Fault::WrongFn {
                cell: 7,
                actual: CellFn::Nand
            })
        );
        for bad in [
            "stuck2@1", "and@8", "and@", "@3", "and", "frob@1", "stuck0@x",
        ] {
            assert_eq!(Fault::parse_wire(bad), None, "{bad}");
        }
    }

    #[test]
    fn shipped_targets_are_distinct_and_nontrivial() {
        let mut tts = Vec::new();
        for (name, cfg) in SHIPPED_TARGETS {
            let tt = Vrc::new(cfg).truth_table();
            assert!(
                tt != 0x0000 && tt != 0xFFFF,
                "{name} has a constant truth table"
            );
            tts.push(tt);
        }
        tts.sort_unstable();
        tts.dedup();
        assert_eq!(
            tts.len(),
            SHIPPED_TARGETS.len(),
            "duplicate target functions"
        );
        // The demo target keeps its pinned truth table.
        assert_eq!(Vrc::new(SHIPPED_TARGETS[0].1).truth_table(), 0x9B9B);
    }

    #[test]
    fn healable_fault_exists_for_representable_target() {
        // Pick a target; inject a stuck fault; exhaustively confirm a
        // perfect healing configuration exists (the premise of the GA
        // healing demo).
        let target = Vrc::new(0x1B26).truth_table();
        let fault = Fault::StuckAt {
            cell: 2,
            value: true,
        };
        let healed = (0..=u16::MAX)
            .filter(|&cfg| healing_fitness(cfg, target, Some(fault)) == PERFECT_FITNESS)
            .count();
        // 240 of 65 536 configurations heal this fault (verified by
        // exhaustive enumeration), e.g. 0x0706.
        assert_eq!(healed, 240);
        assert_eq!(
            healing_fitness(0x0706, target, Some(fault)),
            PERFECT_FITNESS
        );
    }
}
