//! The VRC as a fitness evaluation module.
//!
//! Intrinsic EHW evaluates candidates *on the hardware itself*: the GA
//! core's `candidate` bus is the VRC configuration, the FEM applies all
//! 16 input patterns to the (possibly faulted) fabric and scores the
//! truth-table match against the stored target. One pattern per clock —
//! a 16-cycle evaluation plus handshake, which is exactly the kind of
//! fitness-evaluation-dominated workload where the paper argues the
//! multichip/hybrid topologies remain competitive.

use ga_fitness::fem::{Fem, FemIn, FemOut};
use hwsim::{Clocked, Reg};

use crate::vrc::{Fault, TruthTable, Vrc};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum State {
    #[default]
    Idle,
    /// Applying pattern `i` (sweeps 0..16).
    Sweep,
    Hold,
}

/// The VRC-backed fitness evaluation module.
#[derive(Debug, Clone)]
pub struct VrcFem {
    target: TruthTable,
    fault: Option<Fault>,
    state: Reg<State>,
    pattern: Reg<u8>,
    matches: Reg<u8>,
    config: Reg<u16>,
    fit_value: Reg<u16>,
    fit_valid: Reg<bool>,
}

impl VrcFem {
    /// Build a FEM that scores configurations against `target` on a
    /// fabric with `fault` injected.
    pub fn new(target: TruthTable, fault: Option<Fault>) -> Self {
        VrcFem {
            target,
            fault,
            state: Reg::default(),
            pattern: Reg::default(),
            matches: Reg::default(),
            config: Reg::default(),
            fit_value: Reg::default(),
            fit_valid: Reg::default(),
        }
    }

    /// The target truth table.
    pub fn target(&self) -> TruthTable {
        self.target
    }

    /// Change the injected fault mid-mission (the healing scenario:
    /// radiation strikes between runs).
    pub fn set_fault(&mut self, fault: Option<Fault>) {
        self.fault = fault;
    }
}

impl Clocked for VrcFem {
    fn reset(&mut self) {
        self.state.reset_to(State::Idle);
        self.pattern.reset_to(0);
        self.matches.reset_to(0);
        self.config.reset_to(0);
        self.fit_value.reset_to(0);
        self.fit_valid.reset_to(false);
    }

    fn commit(&mut self) {
        self.state.commit();
        self.pattern.commit();
        self.matches.commit();
        self.config.commit();
        self.fit_value.commit();
        self.fit_valid.commit();
    }
}

impl Fem for VrcFem {
    fn eval(&mut self, i: FemIn) {
        match self.state.get() {
            State::Idle => {
                if i.fit_request {
                    self.config.set(i.candidate);
                    self.pattern.set(0);
                    self.matches.set(0);
                    self.state.set(State::Sweep);
                }
            }
            State::Sweep => {
                let p = self.pattern.get();
                let vrc = Vrc {
                    config: self.config.get(),
                    fault: self.fault,
                };
                let got = vrc.eval(p);
                let want = (self.target >> p) & 1 == 1;
                let m = self.matches.get() + u8::from(got == want);
                self.matches.set(m);
                if p == 15 {
                    self.fit_value.set(m as u16 * 4095);
                    self.fit_valid.set(true);
                    self.state.set(State::Hold);
                } else {
                    self.pattern.set(p + 1);
                }
            }
            State::Hold => {
                if !i.fit_request {
                    self.fit_valid.set(false);
                    self.state.set(State::Idle);
                }
            }
        }
    }

    fn out(&self) -> FemOut {
        FemOut {
            fit_value: self.fit_value.get(),
            fit_valid: self.fit_valid.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vrc::healing_fitness;

    fn transact(fem: &mut VrcFem, config: u16) -> (u16, u32) {
        let mut cycles = 0;
        let mut out = None;
        for _ in 0..100 {
            fem.eval(FemIn {
                fit_request: true,
                candidate: config,
            });
            fem.commit();
            cycles += 1;
            if fem.out().fit_valid {
                out = Some(fem.out().fit_value);
                break;
            }
        }
        for _ in 0..5 {
            fem.eval(FemIn::default());
            fem.commit();
            if !fem.out().fit_valid {
                break;
            }
        }
        (out.expect("VRC FEM never answered"), cycles)
    }

    #[test]
    fn fem_matches_reference_fitness() {
        let target = Vrc::new(0x1B26).truth_table();
        let fault = Some(Fault::StuckAt {
            cell: 1,
            value: true,
        });
        let mut fem = VrcFem::new(target, fault);
        fem.reset();
        for cfg in [0u16, 0x1B26, 0xFFFF, 0xA5A5] {
            let (fit, _) = transact(&mut fem, cfg);
            assert_eq!(fit, healing_fitness(cfg, target, fault));
        }
    }

    #[test]
    fn sweep_takes_sixteen_pattern_cycles() {
        let target = 0x0F0F;
        let mut fem = VrcFem::new(target, None);
        fem.reset();
        let (_, cycles) = transact(&mut fem, 0x1234);
        assert_eq!(cycles, 17, "accept + 16 pattern cycles");
    }

    #[test]
    fn fault_can_be_updated_between_runs() {
        let target = Vrc::new(0x0000).truth_table();
        let mut fem = VrcFem::new(target, None);
        fem.reset();
        let (healthy, _) = transact(&mut fem, 0x0000);
        assert_eq!(healthy, 16 * 4095);
        fem.set_fault(Some(Fault::StuckAt {
            cell: 6,
            value: false,
        }));
        let (faulted, _) = transact(&mut fem, 0x0000);
        assert!(faulted < healthy);
    }
}
