//! The §IV-C speedup experiment.
//!
//! Paper setup: mBF6_2, population 32, crossover rate 0.625 (threshold
//! 10), mutation rate 0.0625 (threshold 1), 32 generations; software
//! runtime averaged over six runs = 37.615 ms; hardware time measured by
//! an on-fabric 32-bit counter at the 50 MHz GA clock; speedup ≈ 5.16×
//! (hardware ≈ 7.29 ms).

use carng::seeds::TABLE7_SEEDS;
use ga_core::{GaParams, GaSystem};
use ga_fitness::{FemBank, FemSlot, LookupFem, TestFunction};

use crate::cost::PpcCostModel;
use crate::counting::CountingGa;

/// One seed's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupSample {
    /// RNG seed used.
    pub seed: u16,
    /// Hardware cycles (50 MHz clock).
    pub hw_cycles: u64,
    /// Hardware seconds.
    pub hw_seconds: f64,
    /// Modeled software processor cycles.
    pub sw_cycles: f64,
    /// Modeled software seconds.
    pub sw_seconds: f64,
}

/// Averaged results over the run set.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupReport {
    /// Per-seed samples.
    pub samples: Vec<SpeedupSample>,
    /// Mean hardware seconds.
    pub hw_seconds: f64,
    /// Mean software seconds.
    pub sw_seconds: f64,
    /// Mean speedup (sw/hw), in wall-clock seconds — the paper's
    /// headline metric. The hardware runs at 50 MHz while the PPC405
    /// core runs at 300 MHz, so this ratio folds a 6× clock handicap
    /// into the architectural comparison.
    pub speedup: f64,
    /// Mean cycle-for-cycle speedup (sw cycles / hw cycles): the
    /// clock-normalized metric, i.e. the wall-clock speedup the GA
    /// engine would show if both sides ran at the same clock.
    pub speedup_equal_clock: f64,
    /// The cost model used for the software side.
    pub model: PpcCostModel,
}

/// Run the paper's speedup experiment: `runs` seeds (the paper used six
/// runs; we use the six Table VII seeds), identical parameters on the
/// cycle-accurate hardware system and the instrumented software GA.
pub fn speedup_experiment(model: PpcCostModel, runs: usize) -> SpeedupReport {
    assert!(runs >= 1 && runs <= TABLE7_SEEDS.len());
    let f = TestFunction::Mbf6_2;
    let mut samples = Vec::with_capacity(runs);
    for &seed in TABLE7_SEEDS.iter().take(runs) {
        // §IV-C parameters: pop 32, XR 10/16 = 0.625, MR 1/16, 32 gens.
        let params = GaParams::new(32, 32, 10, 1, seed);

        let mut hw = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
            LookupFem::for_function(f),
        )]));
        let run = hw
            .program_and_run(&params, 500_000_000)
            .expect("hardware run timed out");

        let sw = CountingGa::new(params, |c| f.eval_u16(c)).run();
        samples.push(SpeedupSample {
            seed,
            hw_cycles: run.cycles,
            hw_seconds: run.seconds,
            sw_cycles: model.cycles(&sw.ops),
            sw_seconds: model.seconds(&sw.ops),
        });
    }
    let hw_seconds = samples.iter().map(|s| s.hw_seconds).sum::<f64>() / samples.len() as f64;
    let sw_seconds = samples.iter().map(|s| s.sw_seconds).sum::<f64>() / samples.len() as f64;
    let hw_cycles = samples.iter().map(|s| s.hw_cycles as f64).sum::<f64>() / samples.len() as f64;
    let sw_cycles = samples.iter().map(|s| s.sw_cycles).sum::<f64>() / samples.len() as f64;
    SpeedupReport {
        samples,
        hw_seconds,
        sw_seconds,
        speedup: sw_seconds / hw_seconds,
        speedup_equal_clock: sw_cycles / hw_cycles,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_beats_software_by_paper_magnitude() {
        let report = speedup_experiment(PpcCostModel::default(), 3);
        // The paper measured 5.16×. Our FSM is the same architecture but
        // a cleaner scheduling, so the exact ratio differs; the shape —
        // hardware wins by single-digit-to-low-double-digit factors —
        // must hold.
        assert!(
            report.speedup > 2.0,
            "hardware should clearly win: {:.2}×",
            report.speedup
        );
        assert!(
            report.speedup < 100.0,
            "a >100× ratio would mean the cost model is mis-calibrated: {:.2}×",
            report.speedup
        );
    }

    #[test]
    fn software_time_is_paper_magnitude() {
        // The paper's software measurement is 37.615 ms; the calibrated
        // model must land in the same decade.
        let report = speedup_experiment(PpcCostModel::default(), 2);
        assert!(
            report.sw_seconds > 3.7e-3 && report.sw_seconds < 0.38,
            "modeled software time {} s is out of decade",
            report.sw_seconds
        );
    }

    #[test]
    fn cached_model_reduces_the_gap() {
        let uncached = speedup_experiment(PpcCostModel::default(), 2);
        let cached = speedup_experiment(PpcCostModel::cached(), 2);
        assert!(cached.speedup < uncached.speedup);
    }

    #[test]
    fn cached_wall_clock_loss_is_a_clock_artifact() {
        // Against a cached 300 MHz PPC405 the 50 MHz engine loses on
        // wall clock (speedup < 1) purely through the 6× clock gap:
        // normalized to equal clocks, the engine still wins
        // cycle-for-cycle.
        let cached = speedup_experiment(PpcCostModel::cached(), 2);
        assert!(
            cached.speedup < 1.0,
            "the clock handicap should dominate: {:.3}×",
            cached.speedup
        );
        assert!(
            cached.speedup_equal_clock > 1.0,
            "cycle-for-cycle the engine must win: {:.3}×",
            cached.speedup_equal_clock
        );
        // The two metrics differ exactly by the clock ratio.
        let clock_ratio = cached.model.clock_hz / 50e6;
        let reconstructed = cached.speedup * clock_ratio;
        assert!(
            (reconstructed - cached.speedup_equal_clock).abs() / cached.speedup_equal_clock < 1e-9,
            "{reconstructed} vs {}",
            cached.speedup_equal_clock
        );
    }

    #[test]
    fn hardware_time_consistent_across_seeds() {
        let report = speedup_experiment(PpcCostModel::default(), 3);
        let min = report.samples.iter().map(|s| s.hw_cycles).min().unwrap() as f64;
        let max = report.samples.iter().map(|s| s.hw_cycles).max().unwrap() as f64;
        // Cycle counts vary only through selection early-exit points.
        assert!(max / min < 1.5, "hw cycles vary too much: {min} vs {max}");
    }
}
