//! # swga — the software GA and the §IV-C runtime comparison
//!
//! The paper compares its hardware GA against "a software implementation
//! of a GA optimizer, similar to the GA optimization algorithm in the IP
//! core, developed in the C programming language", running on the
//! Virtex-II Pro's embedded PowerPC processor with the *same* block-RAM
//! lookup fitness module on the FPGA fabric — so the software pays a
//! processor-bus round trip per fitness evaluation. Measured result:
//! 37.615 ms for pop 32 / 32 generations on mBF6_2, a **5.16×** slowdown
//! versus the 50 MHz hardware core.
//!
//! We cannot run a PowerPC 405, so the reproduction works in modeled
//! cycles (the paper itself computes hardware time as counter × clock
//! period):
//!
//! * [`counting::CountingGa`] — the software GA, draw-identical to the
//!   IP core's algorithm, instrumented with an operation counter whose
//!   categories map onto PPC405 instruction classes;
//! * [`cost::PpcCostModel`] — per-class cycle costs (documented against
//!   the PPC405 pipeline and PLB bus latency) that convert counts into
//!   seconds;
//! * [`speedup`] — the end-to-end experiment: hardware cycles from the
//!   cycle-accurate `GaSystem` versus modeled software cycles, averaged
//!   over multiple seeds like the paper's six runs.

#![forbid(unsafe_code)]

pub mod cost;
pub mod counting;
pub mod speedup;

pub use cost::{OpCounts, PpcCostModel};
pub use counting::CountingGa;
pub use speedup::{speedup_experiment, SpeedupReport};
