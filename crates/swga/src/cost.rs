//! Operation counts and the PowerPC-405 cycle cost model.
//!
//! The paper's software baseline ran on the PowerPC 405 hard core of the
//! same Virtex-II Pro device, with the fitness lookup table left on the
//! FPGA fabric and reached over the processor local bus (PLB) — "this
//! setup gives a fair comparison between the software and hardware
//! implementations as both are implemented using the same technology
//! node". The model below reproduces that structure:
//!
//! * PPC405 is a scalar 5-stage core: most integer ops are 1 cycle;
//!   cached loads/stores ~2; taken branches ~2–3; `mullw` ~4.
//! * A PLB round trip to fabric block RAM costs tens of processor
//!   cycles; we use 30 (address + arbitration + 1-cycle BRAM + return).
//! * Clock: V2P designs typically run the PPC405 block at 300 MHz with
//!   a 100 MHz PLB; the paper doesn't print its clocks, so the model is
//!   **calibrated** — the documented default (300 MHz core) lands the
//!   software run within ~15% of the paper's 37.615 ms, and the
//!   sensitivity of the speedup to this choice is part of the
//!   EXPERIMENTS.md discussion.

/// Dynamic operation counts of one software GA run, bucketed by
/// PPC405 instruction class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Single-cycle integer ALU ops (add/xor/shift/compare/move).
    pub alu: u64,
    /// Loads (cached, from the population arrays).
    pub load: u64,
    /// Stores (cached).
    pub store: u64,
    /// Branches (loop back-edges, conditionals).
    pub branch: u64,
    /// 32-bit multiplies (`mullw`).
    pub mul: u64,
    /// Uncached bus round trips to the fabric fitness ROM (PLB reads).
    pub bus_read: u64,
    /// Function call/return overhead events.
    pub call: u64,
}

impl OpCounts {
    /// Element-wise sum.
    pub fn add(&mut self, other: &OpCounts) {
        self.alu += other.alu;
        self.load += other.load;
        self.store += other.store;
        self.branch += other.branch;
        self.mul += other.mul;
        self.bus_read += other.bus_read;
        self.call += other.call;
    }

    /// Total dynamic instruction count (bus reads counted once each).
    pub fn total_ops(&self) -> u64 {
        self.alu + self.load + self.store + self.branch + self.mul + self.bus_read + self.call
    }
}

/// Per-class cycle costs and the processor clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpcCostModel {
    /// Cycles per ALU op.
    pub alu: f64,
    /// Cycles per cached load.
    pub load: f64,
    /// Cycles per cached store.
    pub store: f64,
    /// Average cycles per branch (mix of taken/not-taken).
    pub branch: f64,
    /// Cycles per 32-bit multiply.
    pub mul: f64,
    /// Cycles per PLB round trip to the fabric fitness ROM.
    pub bus_read: f64,
    /// Cycles per call/return pair.
    pub call: f64,
    /// Extra cycles per executed instruction for instruction fetch.
    /// Bare-metal V2P prototypes routinely run with caches disabled and
    /// code in PLB block RAM, making every fetch a bus access — the only
    /// configuration consistent with the paper's 37.615 ms measurement
    /// (a cached 300 MHz PPC405 would finish this workload in well under
    /// a millisecond). See EXPERIMENTS.md for the sensitivity analysis.
    pub ifetch: f64,
    /// Processor clock in Hz.
    pub clock_hz: f64,
}

impl Default for PpcCostModel {
    /// The documented PPC405-on-V2P defaults (see module docs).
    fn default() -> Self {
        PpcCostModel {
            alu: 1.0,
            load: 2.0,
            store: 2.0,
            branch: 2.0,
            mul: 4.0,
            bus_read: 30.0,
            call: 6.0,
            ifetch: 18.0,
            clock_hz: 300e6,
        }
    }
}

impl PpcCostModel {
    /// A cached-execution variant (instruction cache on, data mostly in
    /// cache): the optimistic software baseline for the sensitivity
    /// analysis in EXPERIMENTS.md.
    pub fn cached() -> Self {
        PpcCostModel {
            ifetch: 0.0,
            ..Default::default()
        }
    }
}

impl PpcCostModel {
    /// Modeled processor cycles for an operation mix.
    pub fn cycles(&self, c: &OpCounts) -> f64 {
        c.alu as f64 * self.alu
            + c.load as f64 * self.load
            + c.store as f64 * self.store
            + c.branch as f64 * self.branch
            + c.mul as f64 * self.mul
            + c.bus_read as f64 * self.bus_read
            + c.call as f64 * self.call
            + c.total_ops() as f64 * self.ifetch
    }

    /// Modeled wall-clock seconds.
    pub fn seconds(&self, c: &OpCounts) -> f64 {
        self.cycles(c) / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_weight_each_class() {
        let c = OpCounts {
            alu: 10,
            load: 5,
            store: 2,
            branch: 4,
            mul: 1,
            bus_read: 3,
            call: 2,
        };
        let m = PpcCostModel::cached();
        let expect = 10.0 + 10.0 + 4.0 + 8.0 + 4.0 + 90.0 + 12.0;
        assert!((m.cycles(&c) - expect).abs() < 1e-9);
        assert_eq!(c.total_ops(), 27);
        // The uncached default adds the per-instruction fetch penalty.
        let u = PpcCostModel::default();
        assert!((u.cycles(&c) - (expect + 27.0 * u.ifetch)).abs() < 1e-9);
    }

    #[test]
    fn add_accumulates() {
        let mut a = OpCounts {
            alu: 1,
            ..Default::default()
        };
        a.add(&OpCounts {
            alu: 2,
            bus_read: 7,
            ..Default::default()
        });
        assert_eq!(a.alu, 3);
        assert_eq!(a.bus_read, 7);
    }

    #[test]
    fn seconds_respect_clock() {
        let c = OpCounts {
            alu: 300,
            ..Default::default()
        };
        let m = PpcCostModel::cached();
        assert!(
            (m.seconds(&c) - 1e-6).abs() < 1e-15,
            "300 cycles at 300 MHz is 1 µs"
        );
    }

    #[test]
    fn bus_reads_dominate_fitness_bound_workloads() {
        // One fitness eval (1 bus read) must out-cost the handful of ALU
        // ops around it — the PLB overhead is the reason software GAs on
        // embedded cores lose to in-fabric ones. (Compared under the
        // cached model; with caches off, instruction fetch dominates
        // everything equally.)
        let m = PpcCostModel::cached();
        let eval = OpCounts {
            bus_read: 1,
            ..Default::default()
        };
        let glue = OpCounts {
            alu: 10,
            load: 2,
            branch: 2,
            ..Default::default()
        };
        assert!(m.cycles(&eval) > m.cycles(&glue));
    }
}
