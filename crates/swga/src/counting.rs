//! The instrumented software GA.
//!
//! Runs the exact algorithm of the IP core (same operators, same RNG,
//! same draw order — reusing `ga_core::ops`) while tallying the dynamic
//! operation mix a compiled C implementation executes on the PowerPC.
//! Fitness evaluations are bus reads: the lookup ROM stays on the FPGA
//! fabric exactly as in the paper's measurement setup.
//!
//! The per-step op annotations are written next to the code they model;
//! they correspond to a plain `-O2` compilation of the equivalent C
//! (no vectorization on a PPC405).

use carng::{CaRng, Rng16};
use ga_core::behavioral::{GenStats, Individual};
use ga_core::ops;
use ga_core::GaParams;

use crate::cost::OpCounts;

/// Result of an instrumented software run.
#[derive(Debug, Clone, PartialEq)]
pub struct SwRun {
    /// Best individual found.
    pub best: Individual,
    /// Dynamic operation counts.
    pub ops: OpCounts,
    /// Fitness evaluations (each is one bus read).
    pub evaluations: u64,
    /// Per-generation statistics, generation 0 (initial population)
    /// included — same shape as the behavioral engine's history, so the
    /// conformance suite can compare trajectories across engines. The
    /// recording itself is *not* costed: the measured C program logs
    /// nothing (the paper reads these values off Chipscope probes).
    pub history: Vec<GenStats>,
}

/// The instrumented software GA.
pub struct CountingGa<F: FnMut(u16) -> u16> {
    params: GaParams,
    rng: CaRng,
    fitness: F,
    counts: OpCounts,
    evaluations: u64,
}

impl<F: FnMut(u16) -> u16> CountingGa<F> {
    /// Create the software optimizer. `fitness` stands in for the
    /// fabric lookup ROM; each call is costed as one PLB round trip.
    pub fn new(params: GaParams, fitness: F) -> Self {
        params.validate().expect("invalid GA parameters");
        CountingGa {
            params,
            rng: CaRng::new(params.seed),
            fitness,
            counts: OpCounts::default(),
            evaluations: 0,
        }
    }

    /// Software CA-RNG step: two shifts, two XORs, an AND, the state
    /// store, and the call overhead of `rand16()`.
    fn draw(&mut self) -> u16 {
        self.counts.alu += 5;
        self.counts.store += 1;
        self.counts.call += 1;
        self.rng.next_u16()
    }

    /// One fitness evaluation: argument marshaling + the PLB read of
    /// the fabric ROM.
    fn evaluate(&mut self, chrom: u16) -> u16 {
        self.counts.alu += 2;
        self.counts.bus_read += 1;
        self.evaluations += 1;
        (self.fitness)(chrom)
    }

    /// Proportionate selection: threshold scale (64-bit multiply = two
    /// `mullw`/`mulhw` + shift) then the cumulative scan (load, add,
    /// compare-branch per member).
    fn select(&mut self, pop: &[Individual], fit_sum: u32) -> Individual {
        let r = self.draw();
        self.counts.mul += 2;
        self.counts.alu += 2;
        let threshold = ops::selection_threshold(fit_sum, r);
        let mut cum = 0u32;
        for ind in pop {
            self.counts.load += 1;
            self.counts.alu += 1;
            self.counts.branch += 1;
            cum += ind.fitness as u32;
            if ops::selection_hit(cum, threshold) {
                return *ind;
            }
        }
        self.counts.branch += 1;
        *pop.last().expect("population non-empty")
    }

    /// Run the full optimization and return the op tally.
    pub fn run(mut self) -> SwRun {
        let pop_n = self.params.pop_size as usize;
        let mut history = Vec::with_capacity(self.params.n_gens as usize + 1);

        // --- initial population ---------------------------------------
        let mut cur: Vec<Individual> = Vec::with_capacity(pop_n);
        let mut fit_sum = 0u32;
        let mut best = Individual::default();
        for i in 0..pop_n {
            let chrom = self.draw();
            let fitness = self.evaluate(chrom);
            // Array stores + running sum + best check + loop overhead.
            self.counts.store += 2;
            self.counts.alu += 3;
            self.counts.branch += 2;
            if i == 0 || fitness > best.fitness {
                best = Individual { chrom, fitness };
            }
            fit_sum += fitness as u32;
            cur.push(Individual { chrom, fitness });
        }
        history.push(GenStats {
            gen: 0,
            best,
            fit_sum,
            pop_size: self.params.pop_size,
        });

        // --- generations ----------------------------------------------
        for gen in 0..self.params.n_gens {
            let mut new_pop = Vec::with_capacity(pop_n);
            // Elite copy: two stores + bookkeeping.
            self.counts.store += 2;
            self.counts.alu += 2;
            new_pop.push(best);
            let mut new_sum = best.fitness as u32;
            let mut new_best = best;

            while new_pop.len() < pop_n {
                let p1 = self.select(&cur, fit_sum);
                let p2 = self.select(&cur, fit_sum);
                // Crossover: field extraction + decision + mask algebra.
                let (xd, cut) = ops::xover_fields(self.draw());
                self.counts.alu += 8;
                self.counts.branch += 1;
                let (o1, o2) = if ops::decision(xd, self.params.xover_threshold) {
                    ops::crossover(p1.chrom, p2.chrom, cut)
                } else {
                    (p1.chrom, p2.chrom)
                };
                for mut chrom in [o1, o2] {
                    if new_pop.len() >= pop_n {
                        break;
                    }
                    // Mutation: field extraction + decision + XOR.
                    let (md, point) = ops::mut_fields(self.draw());
                    self.counts.alu += 4;
                    self.counts.branch += 1;
                    if ops::decision(md, self.params.mut_threshold) {
                        chrom = ops::mutate(chrom, point);
                    }
                    let fitness = self.evaluate(chrom);
                    // Store offspring, accumulate sum, track best, loop.
                    self.counts.store += 2;
                    self.counts.alu += 3;
                    self.counts.branch += 2;
                    let ind = Individual { chrom, fitness };
                    if fitness > new_best.fitness {
                        new_best = ind;
                    }
                    new_sum += fitness as u32;
                    new_pop.push(ind);
                }
            }
            // Swap population pointers + generation bookkeeping.
            self.counts.alu += 4;
            self.counts.branch += 1;
            cur = new_pop;
            fit_sum = new_sum;
            best = new_best;
            history.push(GenStats {
                gen: gen + 1,
                best,
                fit_sum,
                pop_size: self.params.pop_size,
            });
        }

        SwRun {
            best,
            ops: self.counts,
            evaluations: self.evaluations,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carng::CaRng;
    use ga_core::GaEngine;
    use ga_fitness::TestFunction;

    #[test]
    fn software_ga_matches_behavioral_engine_result() {
        // The software implementation is "similar to the GA optimization
        // algorithm in the IP core" — here it is draw-identical, so the
        // answers must agree exactly.
        let params = GaParams::new(32, 32, 10, 1, 0x2961);
        let f = TestFunction::Mbf6_2;
        let sw = CountingGa::new(params, |c| f.eval_u16(c)).run();
        let engine = GaEngine::new(params, CaRng::new(params.seed), |c| f.eval_u16(c)).run();
        assert_eq!(sw.best, engine.best);
        assert_eq!(sw.evaluations, engine.evaluations);
    }

    #[test]
    fn history_matches_behavioral_engine_generation_for_generation() {
        // The trajectory, not just the answer: gen 0 through the final
        // generation must carry identical (best, fit_sum) at every step.
        for (pop, gens, seed) in [(32u8, 16u32, 0x2961u16), (15, 8, 0x061F), (64, 8, 45890)] {
            let params = GaParams::new(pop, gens, 10, 1, seed);
            let f = TestFunction::Bf6;
            let sw = CountingGa::new(params, |c| f.eval_u16(c)).run();
            let engine = GaEngine::new(params, CaRng::new(params.seed), |c| f.eval_u16(c)).run();
            assert_eq!(sw.history.len(), gens as usize + 1);
            assert_eq!(sw.history, engine.history, "pop {pop} seed {seed:#06x}");
        }
    }

    #[test]
    fn bus_reads_equal_evaluations() {
        let params = GaParams::new(16, 8, 10, 1, 0xB342);
        let sw = CountingGa::new(params, |c| TestFunction::F3.eval_u16(c)).run();
        assert_eq!(sw.ops.bus_read, sw.evaluations);
        assert_eq!(sw.evaluations, 16 + 8 * 15);
    }

    #[test]
    fn op_counts_scale_with_population() {
        let small = CountingGa::new(GaParams::new(8, 8, 10, 1, 7), |c| {
            TestFunction::F3.eval_u16(c)
        })
        .run();
        let large = CountingGa::new(GaParams::new(64, 8, 10, 1, 7), |c| {
            TestFunction::F3.eval_u16(c)
        })
        .run();
        // Selection is O(pop²) per generation: ops grow superlinearly.
        assert!(large.ops.total_ops() > 8 * small.ops.total_ops());
    }

    #[test]
    fn selection_scan_dominates_loads() {
        let params = GaParams::new(64, 16, 10, 1, 0x061F);
        let sw = CountingGa::new(params, |c| TestFunction::Bf6.eval_u16(c)).run();
        // Each selection scans up to pop members: loads must dwarf
        // stores in this workload.
        assert!(sw.ops.load > 4 * sw.ops.store);
    }
}
