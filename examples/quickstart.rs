//! Quickstart: program the GA IP core and run one optimization.
//!
//! This is the paper's basic usage flow (§III-B.8): build the system of
//! Fig. 4 (core + RNG + GA memory + fitness module), program the GA
//! parameters over the two-way initialization handshake (Table III),
//! pulse `start_GA`, and read the best candidate when `GA_done` rises.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ga_ip::prelude::*;

fn main() {
    // A block-ROM lookup fitness module for the maxi-max test function
    // F3(x, y) = 8x + 4y (global optimum 3060 at x = y = 255).
    let fems = FemBank::new(vec![FemSlot::Lookup(LookupFem::for_function(
        TestFunction::F3,
    ))]);
    let mut system = GaSystem::new(fems);

    // Program the runtime parameters: population 32, 32 generations,
    // crossover 10/16 = 0.625, mutation 1/16 = 0.0625, seed 0x2961 —
    // the paper's workhorse setting.
    let params = GaParams::new(32, 32, 10, 1, 0x2961);
    let cycles = system.program(&params);
    println!("programmed 6 parameters over the init handshake in {cycles} cycles");

    // Run to GA_done.
    let run = system.run(50_000_000).expect("watchdog");
    println!(
        "GA_done after {} cycles ({:.3} ms at 50 MHz)",
        run.cycles,
        run.seconds * 1e3
    );
    println!(
        "best candidate: {:#06X} (x = {}, y = {}), fitness {} / 3060",
        run.best.chrom,
        run.best.chrom >> 8,
        run.best.chrom & 0xFF,
        run.best.fitness
    );

    // The per-generation probe (the paper captured the same two series
    // with Chipscope).
    println!("\ngen   best    avg");
    for s in run.history.iter().take(8) {
        println!("{:>3} {:>6} {:>6.0}", s.gen, s.best.fitness, s.avg());
    }
    println!("...");
    let last = run.history.last().unwrap();
    println!(
        "{:>3} {:>6} {:>6.0}",
        last.gen,
        last.best.fitness,
        last.avg()
    );
}
