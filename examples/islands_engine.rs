//! The island-model composite in one screen: take any registered
//! engine with a stepping handle from the registry, ring-connect four
//! islands of it on disjoint jump-ahead RNG streams, and migrate the
//! best individual every epoch — here over both the behavioral CA
//! engine and the compiled 64-lane netlist, which must agree bit for
//! bit.
//!
//! Run with `cargo run --release --example islands_engine`.

use ga_core::islands::IslandConfig;
use ga_engine::{BackendKind, IslandsEngine, RunSpec};
use ga_ip::prelude::*;

fn main() {
    let config = IslandConfig {
        islands: 4,
        epoch: 8,
        epochs: 4,
    };
    let spec = RunSpec {
        width: 16,
        workload: ga_engine::Workload::Function(TestFunction::Bf6),
        params: GaParams::new(32, 32, 10, 1, 0x2961),
        deadline_ms: None,
    };

    println!("4-island ring on BF6 (pop 32 per island, epoch 8 x 4)\n");
    let mut outcomes = Vec::new();
    for kind in [BackendKind::Behavioral, BackendKind::BitSim64] {
        let engine = ga_engine::global().get(kind).expect("backend registered");
        let run = IslandsEngine::new(engine, config)
            .expect("backend exposes a stepping handle")
            .run(spec)
            .expect("island ring runs");
        println!(
            "{:<11} best {:#06x} fitness {:>5}  ({} evaluations)",
            kind.name(),
            run.best.chrom,
            run.best.fitness,
            run.evaluations,
        );
        for (k, b) in run.island_best.iter().enumerate() {
            println!("  island {k}: best fitness {}", b.fitness);
        }
        outcomes.push(run);
    }

    assert_eq!(
        outcomes[0], outcomes[1],
        "netlist-stream islands must match the behavioral ring exactly"
    );
    println!("\nbehavioral and bitsim64 island rings agree bit for bit.");
}
