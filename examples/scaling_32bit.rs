//! Chromosome-length scaling (§III-D): optimize a 32-bit problem with
//! two ganged 16-bit cores, programming the per-half crossover/mutation
//! thresholds from the paper's probability-composition equations.
//!
//! ```sh
//! cargo run --release --example scaling_32bit
//! ```

use ga_ip::ga_core::scaling::{compose_prob, split_prob, threshold_for_prob};
use ga_ip::prelude::*;

/// A 32-bit mini-max function in the spirit of F2: maximize the MSB
/// half, minimize the LSB half.
fn f2_32(c: u32) -> u16 {
    let msb = (c >> 16) as i64;
    let lsb = (c & 0xFFFF) as i64;
    // 0.5·msb − 0.5·lsb + 32768 ∈ [0, 65535].
    ((msb - lsb) / 2 + 32768).clamp(0, 65535) as u16
}

fn main() {
    // Target overall crossover rate: the paper's favorite 0.625. Each
    // 16-bit core crosses independently, so program the per-half
    // thresholds from xovProb32 = p_M + p_L − p_M·p_L.
    let target = 0.625;
    let per_half = split_prob(target);
    let xt = threshold_for_prob(per_half);
    println!(
        "target xovProb32 = {target}: per-half p = {per_half:.3} → threshold {xt} (realized {:.3})",
        compose_prob(xt as f64 / 16.0, xt as f64 / 16.0)
    );
    // Same algebra for mutation at the paper's 0.0625.
    let mt = threshold_for_prob(split_prob(0.0625));
    println!("target mutProb32 = 0.0625: per-half threshold {mt}");

    let params = GaParams::new(64, 64, xt, mt.max(1), 0x2961);
    let run = GaEngine32::new(params, CaRng::new(0x2961), CaRng::new(0x061F), f2_32)
        .with_split_thresholds(xt, xt, mt.max(1), mt.max(1))
        .run();

    println!(
        "\nbest 32-bit candidate {:#010X}: msb {:#06X} (→ max), lsb {:#06X} (→ min)",
        run.best.chrom,
        run.best.chrom >> 16,
        run.best.chrom & 0xFFFF
    );
    println!(
        "fitness {} / 65535 ({:.2}% of optimum) in {} evaluations",
        run.best.fitness,
        100.0 * run.best.fitness as f64 / 65535.0,
        run.evaluations
    );

    println!("\ngen   best fitness");
    for s in run.history.iter().step_by(8) {
        println!("{:>3} {:>8}", s.gen, s.best.fitness);
    }
}
