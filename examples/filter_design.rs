//! User-defined application fitness: GA-designed FIR filter.
//!
//! The abstract's claim under test: the core "can be tailored to any
//! given application by interfacing with the appropriate
//! application-specific fitness evaluation module". Here the
//! application is linear-phase FIR coefficient search (the domain of
//! the paper's reference [16]): the chromosome packs four signed 4-bit
//! taps, the FEM scores the magnitude response against a low-pass
//! target, and the unmodified GA core searches the 65 536-point
//! coefficient space.
//!
//! ```sh
//! cargo run --release --example filter_design
//! ```

use ga_ip::ga_fitness::apps::{
    decode_taps, filter_fitness, lowpass_target, response_grid, GOLDEN_CHROM,
};
use ga_ip::ga_fitness::rom::FitnessRom;
use ga_ip::prelude::*;

fn main() {
    let target = lowpass_target();

    // Tabulate the application fitness into a block ROM — the same
    // offline flow the paper used for its test functions — and drop it
    // into FEM slot 0.
    let rom = FitnessRom::tabulate_fn(|c| filter_fitness(c, &target));
    let mut system = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(LookupFem::new(rom))]));

    let params = GaParams::new(64, 64, 10, 2, 0xB342);
    let run = system.program_and_run(&params, 1_000_000_000).unwrap();

    println!(
        "GA filter design: {} cycles ({:.2} ms at 50 MHz)",
        run.cycles,
        run.seconds * 1e3
    );
    println!(
        "best chromosome {:#06X}, fitness {} / 65535",
        run.best.chrom, run.best.fitness
    );
    let best_taps = decode_taps(run.best.chrom);
    let golden_taps = decode_taps(GOLDEN_CHROM);
    println!("evolved taps: {best_taps:?}");
    println!("target  taps: {golden_taps:?}");

    println!("\nfrequency response (ω/π, target |H|, evolved |H|):");
    let got = response_grid(&best_taps);
    for (k, (t, g)) in target.iter().zip(&got).enumerate() {
        let bar = "#".repeat((g / 2.0).round() as usize);
        println!("{:5.2}  {:6.2}  {:6.2}  {bar}", (k + 1) as f64 / 16.0, t, g);
    }

    if run.best.chrom == GOLDEN_CHROM {
        println!("\n✔ recovered the golden design exactly");
    } else {
        let err: f64 = got.iter().zip(&target).map(|(g, t)| (g - t).abs()).sum();
        println!("\nresponse error vs target: {err:.3} (sum |Δ| over 16 frequencies)");
    }
}
