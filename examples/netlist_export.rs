//! The soft-IP deliverable: synthesize the GA core to a gate-level
//! netlist, print the Table VI implementation report, emit the
//! gate-level Verilog (the paper's hand-off artifact: "a gate-level
//! netlist is provided which can be readily integrated with the user's
//! system"), and price the ASIC variant on the §II-B technology nodes.
//!
//! ```sh
//! cargo run --release --example netlist_export
//! ```

use ga_ip::ga_synth::asic::{price, NODE_180NM, NODE_500NM};
use ga_ip::ga_synth::verilog::{emit_verilog, gate_report};
use ga_ip::ga_synth::{elaborate_ga_core, Xc2vp30};

fn main() {
    let (netlist, report) = elaborate_ga_core();

    println!("== synthesis report (GA core + CA RNG) ==");
    println!("gates            : {}", report.gates);
    println!(
        "LUT4 / MUXCY / FF: {} / {} / {}",
        report.map.lut4, report.map.carry_mux, report.map.ff
    );
    println!(
        "slices           : {} of {} ({}%)",
        report.slices,
        Xc2vp30::SLICES,
        report.slice_pct
    );
    println!(
        "timing           : {:.2} ns critical ({} LUT levels) → fmax {:.0} MHz",
        report.timing.critical_ns, report.timing.levels, report.timing.fmax_mhz
    );
    println!("scan chain       : {} SCAN_REGISTER cells", report.scan_ffs);

    println!("\n== gate-level Verilog ==");
    let verilog = emit_verilog(&netlist, "ga_ip_core");
    let gr = gate_report(&netlist);
    println!(
        "emitted {} bytes: {} combinational primitives, {} MUXCY, {} SCAN_REGISTER",
        verilog.len(),
        gr.combinational,
        gr.carry,
        gr.registers
    );
    let path = std::env::temp_dir().join("ga_ip_core.v");
    std::fs::write(&path, &verilog).expect("write netlist");
    println!("written to {}", path.display());
    // First lines as a taste.
    for line in verilog.lines().take(8) {
        println!("  | {line}");
    }

    println!("\n== ASIC pricing (§II-B comparison nodes) ==");
    for node in [NODE_500NM, NODE_180NM] {
        let r = price(&netlist, node);
        println!(
            "{:<14} {:>9.0} NAND2-eq → {:.2} mm² cells, {:.2} mm² placed",
            r.node.name, r.nand2_equiv, r.cell_area_mm2, r.core_area_mm2
        );
    }
    println!("(the GAA accelerator chip and Chen et al.'s GA chip used these nodes)");
}
