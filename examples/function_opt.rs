//! Optimize all six paper test functions and compare against the known
//! global optima — a compact version of the paper's §IV evaluation, and
//! a demonstration of the multi-fitness-function feature: all six FEMs
//! live in one bank and are switched with `fitfunc_select`, with **no
//! re-synthesis** (the headline feature over every Table I prior work).
//!
//! ```sh
//! cargo run --release --example function_opt
//! ```

use ga_ip::prelude::*;

fn main() {
    // One bank, six internal lookup FEMs (up to eight fit).
    let slots: Vec<FemSlot> = TestFunction::ALL
        .iter()
        .map(|&f| FemSlot::Lookup(LookupFem::for_function(f)))
        .collect();
    let mut system = GaSystem::new(FemBank::new(slots));

    println!(
        "{:<12} {:>6} {:>8} {:>8} {:>7} {:>10}",
        "function", "select", "best", "optimum", "gap%", "cycles"
    );
    println!("{}", "-".repeat(56));
    for (select, &f) in TestFunction::ALL.iter().enumerate() {
        // Switch fitness function at runtime: just drive the 3-bit
        // select and reprogram the parameters.
        system.fitfunc_select = select as u8;
        let params = GaParams::new(64, 64, 10, 1, 0xAAAA);
        let run = system
            .program_and_run(&params, 500_000_000)
            .expect("watchdog");
        let optimum = f.global_max();
        let gap = 100.0 * (optimum.saturating_sub(run.best.fitness)) as f64 / optimum as f64;
        println!(
            "{:<12} {:>6} {:>8} {:>8} {:>6.2} {:>10}",
            f.name(),
            select,
            run.best.fitness,
            optimum,
            gap,
            run.cycles
        );
    }
    println!();
    println!("All six functions share one synthesized system; switching is a bus");
    println!("write, not a re-synthesis (cf. Table I: every prior FPGA GA needed");
    println!("the full design flow re-run to change the fitness function).");
}
