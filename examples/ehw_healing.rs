//! Evolvable-hardware adaptive healing — the paper's motivating
//! application ("the GA core has been used as a search engine for
//! real-time adaptive healing").
//!
//! Scenario: a virtual reconfigurable circuit realizes a target Boolean
//! function; a radiation-style fault strikes one cell; the GA core
//! (running as the complete intrinsic-EHW configuration of §II-D —
//! optimizer and reconfigurable fabric on one chip) evolves a new
//! configuration that restores the target behaviour around the fault.
//!
//! ```sh
//! cargo run --release --example ehw_healing
//! ```

use ga_ip::ga_ehw::vrc::PERFECT_FITNESS;
use ga_ip::prelude::*;

fn main() {
    // The mission function: realized by configuration 0x1B26.
    let golden_config = 0x1B26u16;
    let target = Vrc::new(golden_config).truth_table();
    println!("target truth table: {target:#06X} (realized by config {golden_config:#06X})");

    // Radiation strikes: cell 6's output sticks low. This corrupts 10
    // of the golden configuration's 16 truth-table rows, and 512 of the
    // 65 536 configurations can restore the target around it (both
    // facts verified by exhaustive enumeration).
    let fault = Fault::StuckAt {
        cell: 6,
        value: false,
    };
    let broken = healing_fitness(golden_config, target, Some(fault));
    println!("after fault {fault:?}: golden config scores {broken}/{PERFECT_FITNESS} — degraded");

    // The GA core searches for a healing configuration, evaluating every
    // candidate *intrinsically*: the VRC fabric (on "another chip") is
    // wired through the external fitness ports — the hybrid intrinsic
    // EHW configuration of Fig. 5. Each evaluation sweeps all 16 input
    // patterns across the faulted fabric.
    let fems = FemBank::new(vec![FemSlot::External]);
    let mut system =
        GaSystem::new(fems).with_external_fem(Box::new(VrcFem::new(target, Some(fault))));
    let params = GaParams::new(64, 64, 10, 2, 0xB342);
    let run = system
        .program_and_run(&params, 500_000_000)
        .expect("watchdog");

    println!(
        "\nGA healing run: {} cycles ({:.2} ms at 50 MHz)",
        run.cycles,
        run.seconds * 1e3
    );
    println!(
        "healed configuration {:#06X}: fitness {}/{}",
        run.best.chrom, run.best.fitness, PERFECT_FITNESS
    );
    let healed_tt = Vrc::new(run.best.chrom).with_fault(fault).truth_table();
    println!("truth table on faulted fabric: {healed_tt:#06X}");
    if run.best.fitness == PERFECT_FITNESS {
        println!("✔ full functional recovery around the stuck cell");
    } else {
        let rows = run.best.fitness / 4095;
        println!("partial recovery: {rows}/16 truth-table rows correct");
    }

    // Healing trajectory.
    println!("\ngen   best fitness");
    for s in run.history.iter().step_by(8) {
        println!("{:>3} {:>8}", s.gen, s.best.fitness);
    }
}
