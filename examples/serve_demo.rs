//! The serving layer in one screen: build a mixed batch of GA jobs,
//! shard it across the worker pool, and read back deterministic,
//! input-ordered results — bitsim jobs packed 64-to-a-netlist-run.
//!
//! Run with `cargo run --release --example serve_demo`.

use ga_ip::prelude::*;
use ga_serve::{serve_batch, BackendKind, GaJob, ServeConfig};

fn main() {
    // 40 jobs: every backend, two fitness functions, one seed apiece.
    // The 14 bitsim jobs share one parameter shape, so they travel as a
    // single packed lane-group through the compiled CA-RNG netlist.
    let jobs: Vec<GaJob> = (0..40u16)
        .map(|i| {
            let backend = BackendKind::ALL[i as usize % 3];
            let function = if i % 2 == 0 {
                TestFunction::Mbf6_2
            } else {
                TestFunction::F3
            };
            let params = GaParams::new(16, 8, 10, 1, 0x2961 + i * 131);
            GaJob::new(function, backend, params).with_deadline_ms(5_000)
        })
        .collect();

    let outcome = serve_batch(&jobs, &ServeConfig::default());

    println!("job backend     fn          best    fitness  conv");
    for (job, r) in jobs.iter().zip(&outcome.results) {
        match &r.outcome {
            Ok(o) => println!(
                "{:>3} {:<11} {:<10} {:#06x}  {:>7}  {}",
                r.job,
                r.backend.name(),
                format!("{:?}", job.function),
                o.best.chrom,
                o.best.fitness,
                o.conv_gen
                    .map(|g| g.to_string())
                    .unwrap_or_else(|| "-".into()),
            ),
            Err(e) => println!("{:>3} {:<11} error: {e}", r.job, r.backend.name()),
        }
    }

    let s = &outcome.stats;
    println!(
        "\n{} jobs in {:.3}s ({:.1} jobs/s) — {} bitsim packs covering {} lanes",
        s.jobs(),
        s.wall_seconds,
        s.jobs_per_sec(),
        s.packs,
        s.packed_lanes
    );
    println!(
        "per backend: behavioral {} ({:.0} µs avg), rtl {} ({:.0} µs avg), bitsim64 {} ({:.0} µs avg)",
        s.behavioral.jobs,
        s.behavioral.avg_micros(),
        s.rtl.jobs,
        s.rtl.avg_micros(),
        s.bitsim.jobs,
        s.bitsim.avg_micros()
    );
}
