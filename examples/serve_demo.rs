//! The serving layer in one screen: build a mixed batch of GA jobs,
//! shard it across the worker pool, and read back deterministic,
//! input-ordered results — bitsim jobs packed 64-to-a-netlist-run, and
//! `width: 32` jobs dispatched to the ganged dual-core `rtl32` backend.
//!
//! Run with `cargo run --release --example serve_demo`.

use ga_ip::prelude::*;
use ga_serve::{serve_batch, BackendKind, GaJob, ServeConfig};

fn main() {
    // 40 jobs cycling through every registered backend, two fitness
    // functions, one seed apiece. The bitsim jobs share one parameter
    // shape, so they travel as a single packed lane-group through the
    // compiled CA-RNG netlist.
    let jobs: Vec<GaJob> = (0..40u16)
        .map(|i| {
            let backend = BackendKind::ALL[i as usize % BackendKind::ALL.len()];
            let function = if i % 2 == 0 {
                TestFunction::Mbf6_2
            } else {
                TestFunction::F3
            };
            let params = GaParams::new(16, 8, 10, 1, 0x2961 + i * 131);
            if backend == BackendKind::Rtl32 {
                GaJob::new32(function, params).with_deadline_ms(5_000)
            } else {
                GaJob::new(function, backend, params).with_deadline_ms(5_000)
            }
        })
        .collect();

    let outcome = serve_batch(&jobs, &ServeConfig::default());

    println!("job backend     fn          best        fitness  conv");
    for (job, r) in jobs.iter().zip(&outcome.results) {
        match &r.outcome {
            Ok(o) => println!(
                "{:>3} {:<11} {:<10} {:#010x}  {:>7}  {}",
                r.job,
                r.backend.name(),
                format!("{:?}", job.workload),
                o.best_chrom,
                o.best_fitness,
                o.conv_gen
                    .map(|g| g.to_string())
                    .unwrap_or_else(|| "-".into()),
            ),
            Err(e) => println!("{:>3} {:<11} error: {e}", r.job, r.backend.name()),
        }
    }

    let s = &outcome.stats;
    println!(
        "\n{} jobs in {:.3}s ({:.1} jobs/s) — {} bitsim packs covering {} lanes",
        s.jobs(),
        s.wall_seconds,
        s.jobs_per_sec(),
        s.packs,
        s.packed_lanes
    );
    let per_backend: Vec<String> = ga_engine::global()
        .kinds()
        .into_iter()
        .map(|kind| {
            let c = s.counters(kind);
            format!("{} {} ({:.0} µs avg)", kind.name(), c.jobs, c.avg_micros())
        })
        .collect();
    println!("per backend: {}", per_backend.join(", "));
}
