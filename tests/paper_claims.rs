//! The paper's quantitative claims as **table-driven regression
//! tests**: every expectation row names the paper table or figure it
//! encodes, the exact setting (function, seed, population, thresholds),
//! and the measured-by-this-implementation floor it must keep meeting.
//! The tolerances are explicit constants below — a failure means either
//! a real engine regression (the rows are deterministic: same seed ⇒
//! same run) or a deliberate algorithm change that must update the
//! tables consciously.
//!
//! All runs dispatch through the engine registry (`run_via`) — the
//! cycle-accurate `rtl` backend by default, and Table V additionally on
//! every registered 16-bit backend, which the conformance suite proves
//! trajectory-identical.

use carng::seeds::TABLE7_SEEDS;
use ga_engine::{BackendKind, Limits, RunOutcome, RunSpec};
use ga_ip::prelude::*;

// ---------------------------------------------------------------------
// Explicit tolerances.
// ---------------------------------------------------------------------

/// Abstract: solutions are "within 3.7% of the value of the globally
/// optimal solution".
const ABSTRACT_GAP_PCT: f64 = 3.7;

/// A run counts as converged once its best fitness reaches this
/// fraction of the run's final best (the paper's figures show the
/// best-fitness curve flat; with a different RNG the *last* marginal
/// improvement can land late, so "within 2% of final" is the robust
/// reading of "found the best solution").
const NEAR_BEST_FRACTION: f64 = 0.98;

/// Slack in generations on top of each row's measured settling
/// generation (the 5%-average-change rule of `convergence_generation`).
const SETTLE_MARGIN_GENS: u32 = 4;

/// §IV-B: at least one figure run evaluates "less than 1.1% of the
/// solution space"; every figure run must stay under 3%.
const SEARCH_FRACTION_ANY: f64 = 0.011;
const SEARCH_FRACTION_ALL: f64 = 0.03;

/// Dispatch one run to a registered backend at its native width.
fn run_via(kind: BackendKind, f: TestFunction, params: &GaParams) -> RunOutcome {
    let engine = ga_engine::global().get(kind).expect("backend registered");
    let spec = RunSpec {
        width: engine.capabilities().widths[0],
        workload: ga_engine::Workload::Function(f),
        params: *params,
        deadline_ms: None,
    };
    let prepared = engine.prepare(spec).expect("claim row admitted");
    engine
        .run(&prepared, &Limits::default())
        .expect("claim row runs")
}

fn run_hw(f: TestFunction, params: &GaParams) -> RunOutcome {
    run_via(BackendKind::RtlInterp, f, params)
}

/// First generation whose best fitness reaches
/// `NEAR_BEST_FRACTION × final best`.
fn near_best_generation(run: &RunOutcome) -> u32 {
    let near = (run.best_fitness as f64 * NEAR_BEST_FRACTION) as u16;
    run.trajectory
        .iter()
        .find(|s| s.best_fitness >= near)
        .map(|s| s.gen)
        .expect("final generation always qualifies")
}

// ---------------------------------------------------------------------
// Table V — RT-level simulation runs 1–10 (pop 32/64, 32 generations).
// ---------------------------------------------------------------------

struct Table5Expectation {
    run: u8,
    f: TestFunction,
    seed: u16,
    pop: u8,
    xover: u8,
    /// Best fitness this implementation reaches (deterministic floor).
    min_best: u16,
    /// Settling generation measured at the floor; asserted with
    /// `SETTLE_MARGIN_GENS` slack.
    settle_by: u32,
}

/// Measured on this implementation's CA-RNG (the authors' RNG rule
/// vector is unpublished, so the per-row values differ from the printed
/// table while the qualitative shape reproduces — see EXPERIMENTS.md).
const TABLE5_EXPECTATIONS: [Table5Expectation; 10] = [
    Table5Expectation {
        run: 1,
        f: TestFunction::Bf6,
        seed: 45890,
        pop: 32,
        xover: 10,
        min_best: 4167,
        settle_by: 31,
    },
    Table5Expectation {
        run: 2,
        f: TestFunction::Bf6,
        seed: 45890,
        pop: 64,
        xover: 10,
        min_best: 4182,
        settle_by: 31,
    },
    Table5Expectation {
        run: 3,
        f: TestFunction::Bf6,
        seed: 10593,
        pop: 32,
        xover: 10,
        min_best: 4265,
        settle_by: 1,
    },
    Table5Expectation {
        run: 4,
        f: TestFunction::Bf6,
        seed: 1567,
        pop: 32,
        xover: 10,
        min_best: 4238,
        settle_by: 26,
    },
    Table5Expectation {
        run: 5,
        f: TestFunction::Bf6,
        seed: 1567,
        pop: 32,
        xover: 12,
        min_best: 4251,
        settle_by: 28,
    },
    Table5Expectation {
        run: 6,
        f: TestFunction::F2,
        seed: 45890,
        pop: 32,
        xover: 10,
        min_best: 3052,
        settle_by: 14,
    },
    Table5Expectation {
        run: 7,
        f: TestFunction::F2,
        seed: 45890,
        pop: 64,
        xover: 10,
        min_best: 3048,
        settle_by: 13,
    },
    Table5Expectation {
        run: 8,
        f: TestFunction::F2,
        seed: 10593,
        pop: 64,
        xover: 10,
        min_best: 3060,
        settle_by: 6,
    },
    Table5Expectation {
        run: 9,
        f: TestFunction::F2,
        seed: 10593,
        pop: 32,
        xover: 12,
        min_best: 3060,
        settle_by: 9,
    },
    Table5Expectation {
        run: 10,
        f: TestFunction::F3,
        seed: 1567,
        pop: 32,
        xover: 10,
        min_best: 3060,
        settle_by: 8,
    },
];

#[test]
fn table_v_best_fitness_and_settling_generation() {
    // Every registered 16-bit backend must meet every row's floor —
    // the registry is the source of truth for what "the engine" is.
    let kinds = ga_engine::global().supporting_width(16);
    assert!(kinds.len() >= 4, "expected every 16-bit engine registered");
    for row in &TABLE5_EXPECTATIONS {
        let params = GaParams::new(row.pop, 32, row.xover, 1, row.seed);
        for &kind in &kinds {
            let run = run_via(kind, row.f, &params);
            assert!(
                run.best_fitness >= row.min_best,
                "Table V run {} on {}: best {} fell below the recorded {}",
                row.run,
                kind.name(),
                run.best_fitness,
                row.min_best
            );
            let settle = run.conv_gen.unwrap_or(params.n_gens);
            assert!(
                settle <= row.settle_by + SETTLE_MARGIN_GENS,
                "Table V run {} on {}: settled at generation {settle}, bound {} (+{SETTLE_MARGIN_GENS})",
                row.run,
                kind.name(),
                row.settle_by
            );
        }
    }
}

// ---------------------------------------------------------------------
// Tables VII–IX — the hardware grid: TABLE7_SEEDS × pop {32,64} ×
// xover {10,12}, 64 generations, mutation 1/16.
// ---------------------------------------------------------------------

struct GridExpectation {
    table: &'static str,
    f: TestFunction,
    /// Grid-wide best this implementation reaches (deterministic).
    grid_best: u16,
    /// Settings (of 24) that find the global optimum — Table IX's
    /// "more than one globally optimal solution" claim generalized.
    min_optimal_settings: usize,
}

const GRID_EXPECTATIONS: [GridExpectation; 3] = [
    GridExpectation {
        table: "VII",
        f: TestFunction::Mbf6_2,
        grid_best: 8184,
        min_optimal_settings: 1,
    },
    GridExpectation {
        table: "VIII",
        f: TestFunction::Mbf7_2,
        grid_best: 63995,
        min_optimal_settings: 6,
    },
    GridExpectation {
        table: "IX",
        f: TestFunction::MShubert2D,
        grid_best: 65535,
        min_optimal_settings: 20,
    },
];

#[test]
fn tables_vii_ix_grid_best_within_abstract_tolerance() {
    for exp in &GRID_EXPECTATIONS {
        let optimum = exp.f.global_max();
        let mut grid_best = 0u16;
        let mut optimal_settings = 0usize;
        for &seed in &TABLE7_SEEDS {
            for pop in [32u8, 64] {
                for xover in [10u8, 12] {
                    let params = GaParams::new(pop, 64, xover, 1, seed);
                    let best = run_hw(exp.f, &params).best_fitness;
                    grid_best = grid_best.max(best);
                    if best == optimum {
                        optimal_settings += 1;
                    }
                }
            }
        }
        assert!(
            grid_best >= exp.grid_best,
            "Table {}: grid best {grid_best} fell below the recorded {}",
            exp.table,
            exp.grid_best
        );
        let gap = 100.0 * (optimum as f64 - grid_best as f64) / optimum as f64;
        assert!(
            gap <= ABSTRACT_GAP_PCT,
            "Table {}: best {grid_best} is {gap:.2}% below optimum {optimum} (claim: ≤{ABSTRACT_GAP_PCT}%)",
            exp.table
        );
        assert!(
            optimal_settings >= exp.min_optimal_settings,
            "Table {}: only {optimal_settings} of 24 settings found the optimum (recorded {})",
            exp.table,
            exp.min_optimal_settings
        );
    }
}

// ---------------------------------------------------------------------
// Figs. 13–16 — hardware convergence curves (§IV-B): "the GA core finds
// the best solution within the first 10 generations" and "evaluates
// less than 1.1% of the solution space before finding the best
// solution".
// ---------------------------------------------------------------------

struct FigureExpectation {
    fig: &'static str,
    f: TestFunction,
    seed: u16,
    xover: u8,
    /// Generations-to-converge upper bound (paper: 10; measured: ≤7).
    converge_by: u32,
}

const FIGURE_EXPECTATIONS: [FigureExpectation; 4] = [
    FigureExpectation {
        fig: "13",
        f: TestFunction::Mbf6_2,
        seed: 0x061F,
        xover: 10,
        converge_by: 10,
    },
    FigureExpectation {
        fig: "14",
        f: TestFunction::Mbf6_2,
        seed: 0xA0A0,
        xover: 10,
        converge_by: 10,
    },
    FigureExpectation {
        fig: "15",
        f: TestFunction::Mbf7_2,
        seed: 0xAAAA,
        xover: 12,
        converge_by: 10,
    },
    FigureExpectation {
        fig: "16",
        f: TestFunction::MShubert2D,
        seed: 0xAAAA,
        xover: 10,
        converge_by: 10,
    },
];

#[test]
fn figures_13_16_converge_within_ten_generations() {
    let mut min_fraction = f64::MAX;
    for exp in &FIGURE_EXPECTATIONS {
        let params = GaParams::new(64, 64, exp.xover, 1, exp.seed);
        let run = run_hw(exp.f, &params);
        let found_at = near_best_generation(&run);
        assert!(
            found_at <= exp.converge_by,
            "Fig. {}: {}%-of-best only reached at generation {found_at}, bound {}",
            exp.fig,
            NEAR_BEST_FRACTION * 100.0,
            exp.converge_by
        );
        // Candidates evaluated before convergence: initial population
        // plus pop−1 offspring per generation, over a 2^16 space.
        let evaluated = 64 + found_at as u64 * 63;
        let fraction = evaluated as f64 / 65536.0;
        min_fraction = min_fraction.min(fraction);
        assert!(
            fraction < SEARCH_FRACTION_ALL,
            "Fig. {}: evaluated {:.2}% of the space",
            exp.fig,
            fraction * 100.0
        );
    }
    assert!(
        min_fraction < SEARCH_FRACTION_ANY,
        "no run matched the paper's <{:.1}% search fraction: best {:.3}%",
        SEARCH_FRACTION_ANY * 100.0,
        min_fraction * 100.0
    );
}

// ---------------------------------------------------------------------
// Cross-cutting claims.
// ---------------------------------------------------------------------

/// §IV-A (Table V discussion): "when the RNG seed is changed ... the
/// convergence of the GA is better and the global optimum is found
/// under the exact same settings" — seed choice must change the
/// outcome.
#[test]
fn seed_changes_the_outcome_under_fixed_parameters() {
    let results: Vec<u16> = TABLE7_SEEDS
        .iter()
        .map(|&seed| {
            let params = GaParams::new(32, 32, 10, 1, seed);
            run_hw(TestFunction::Bf6, &params).best_fitness
        })
        .collect();
    let distinct: std::collections::HashSet<u16> = results.iter().copied().collect();
    assert!(
        distinct.len() >= 3,
        "seeds barely matter? results {results:?}"
    );
}

/// §IV-C: the hardware GA beats the modeled software implementation by
/// the paper's magnitude (5.16×; we accept 2×–20× as the same shape).
#[test]
fn speedup_is_paper_magnitude() {
    let report = swga::speedup_experiment(swga::PpcCostModel::default(), 6);
    assert!(
        report.speedup >= 2.0 && report.speedup <= 20.0,
        "speedup {:.2}× out of band",
        report.speedup
    );
    // Paper's software time is 37.615 ms; the model must land within
    // one order of magnitude.
    assert!(report.sw_seconds > 3.7e-3 && report.sw_seconds < 0.38);
}

/// Table VI: resource/timing figures from the synthesized netlist.
#[test]
fn table_vi_reproduces() {
    let (_, report) = ga_ip::ga_synth::elaborate_ga_core();
    assert!(
        (8..=18).contains(&report.slice_pct),
        "slices {}%",
        report.slice_pct
    );
    assert!(
        report.timing.fmax_mhz >= 50.0,
        "fmax {:.1}",
        report.timing.fmax_mhz
    );
    // Block-memory rows are exact.
    assert_eq!(ga_ip::ga_fitness::rom::bram16_count(256, 32), 1);
    assert_eq!(ga_ip::ga_fitness::rom::bram16_count(1 << 16, 16), 64);
}
