//! The paper's headline quantitative claims, checked end-to-end on the
//! cycle-accurate system. Each test names the claim and the section it
//! comes from.

use carng::seeds::TABLE7_SEEDS;
use ga_ip::prelude::*;

fn run_hw(f: TestFunction, params: &GaParams) -> HwRun {
    let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(f),
    )]));
    sys.program_and_run(params, 2_000_000_000)
        .expect("watchdog")
}

/// Abstract: "the proposed core either found the globally optimum
/// solution or found a solution that was within 3.7% of the value of
/// the globally optimal solution."
#[test]
fn within_3_7_percent_of_optimum_on_hard_functions() {
    for f in [
        TestFunction::Mbf6_2,
        TestFunction::Mbf7_2,
        TestFunction::MShubert2D,
    ] {
        let optimum = f.global_max() as f64;
        // Best over the Table VII–IX grid (population 64 column, the
        // paper's strongest setting).
        let mut best = 0u16;
        for &seed in &TABLE7_SEEDS {
            for xr in [10u8, 12] {
                let params = GaParams::new(64, 64, xr, 1, seed);
                best = best.max(run_hw(f, &params).best.fitness);
            }
        }
        let gap = 100.0 * (optimum - best as f64) / optimum;
        assert!(
            gap <= 3.7,
            "{}: best {best} is {gap:.2}% below optimum {optimum}",
            f.name()
        );
    }
}

/// Table IX: "The proposed GA core found more than one globally optimal
/// solution for many different parameter settings."
#[test]
fn shubert_optimum_found_for_multiple_settings() {
    let mut optimal_settings = 0;
    for &seed in &TABLE7_SEEDS {
        for pop in [32u8, 64] {
            for xr in [10u8, 12] {
                let params = GaParams::new(pop, 64, xr, 1, seed);
                if run_hw(TestFunction::MShubert2D, &params).best.fitness == 65535 {
                    optimal_settings += 1;
                }
            }
        }
    }
    assert!(
        optimal_settings >= 2,
        "only {optimal_settings} settings found the mShubert2D optimum"
    );
}

/// §IV-B: "the GA core finds the best solution within the first 10
/// generations for all three test functions" (we allow a small margin:
/// within 16 of 64 generations) and "evaluates less than 1.1% of the
/// solution space before finding the best solution" — we assert < 3%
/// across the board and that at least one run beats the 1.1% figure.
#[test]
fn fast_convergence_and_tiny_search_fraction() {
    let mut min_fraction = f64::MAX;
    // The exact settings of the paper's hardware convergence figures
    // (Figs. 13–16 captions).
    for (f, seed, xr) in [
        (TestFunction::Mbf6_2, 0x061Fu16, 10u8),
        (TestFunction::Mbf6_2, 0xA0A0, 10),
        (TestFunction::Mbf7_2, 0xAAAA, 12),
        (TestFunction::MShubert2D, 0xAAAA, 10),
    ] {
        let params = GaParams::new(64, 64, xr, 1, seed);
        let run = run_hw(f, &params);
        let final_best = run.best.fitness;
        // The paper's figures show the best-fitness curve flat after
        // ~10 generations; with a different RNG the *last* marginal
        // improvement can land later, so the faithful check is that a
        // solution within 2% of the final best exists early.
        let near = (final_best as f64 * 0.98) as u16;
        let found_at = run
            .history
            .iter()
            .find(|s| s.best.fitness >= near)
            .map(|s| s.gen)
            .unwrap();
        assert!(
            found_at <= 16,
            "{}: 98%-of-best only reached at generation {found_at}",
            f.name()
        );
        // Candidates evaluated before the best appeared: initial pop +
        // (pop−1) offspring per generation.
        let evaluated = 64 + found_at as u64 * 63;
        let fraction = evaluated as f64 / 65536.0;
        min_fraction = min_fraction.min(fraction);
        assert!(
            fraction < 0.03,
            "{}: evaluated {:.2}% of the space",
            f.name(),
            fraction * 100.0
        );
    }
    assert!(
        min_fraction < 0.011,
        "no run matched the paper's <1.1% search fraction: best {:.3}%",
        min_fraction * 100.0
    );
}

/// §IV-A (Table V discussion): "when the RNG seed is changed ... the
/// convergence of the GA is better and the global optimum is found
/// under the exact same settings for the other parameters" — seed
/// choice must change the outcome.
#[test]
fn seed_changes_the_outcome_under_fixed_parameters() {
    let results: Vec<u16> = TABLE7_SEEDS
        .iter()
        .map(|&seed| {
            let params = GaParams::new(32, 32, 10, 1, seed);
            run_hw(TestFunction::Bf6, &params).best.fitness
        })
        .collect();
    let distinct: std::collections::HashSet<u16> = results.iter().copied().collect();
    assert!(
        distinct.len() >= 3,
        "seeds barely matter? results {results:?}"
    );
}

/// §IV-C: the hardware GA beats the modeled software implementation by
/// the paper's magnitude (5.16×; we accept 2×–20× as the same shape).
#[test]
fn speedup_is_paper_magnitude() {
    let report = swga::speedup_experiment(swga::PpcCostModel::default(), 6);
    assert!(
        report.speedup >= 2.0 && report.speedup <= 20.0,
        "speedup {:.2}× out of band",
        report.speedup
    );
    // Paper's software time is 37.615 ms; the model must land within
    // one order of magnitude.
    assert!(report.sw_seconds > 3.7e-3 && report.sw_seconds < 0.38);
}

/// Table VI: resource/timing figures from the synthesized netlist.
#[test]
fn table_vi_reproduces() {
    let (_, report) = ga_ip::ga_synth::elaborate_ga_core();
    assert!(
        (8..=18).contains(&report.slice_pct),
        "slices {}%",
        report.slice_pct
    );
    assert!(
        report.timing.fmax_mhz >= 50.0,
        "fmax {:.1}",
        report.timing.fmax_mhz
    );
    // Block-memory rows are exact.
    assert_eq!(ga_ip::ga_fitness::rom::bram16_count(256, 32), 1);
    assert_eq!(ga_ip::ga_fitness::rom::bram16_count(1 << 16, 16), 64);
}
