//! Cross-crate integration tests: the full system exercised the way a
//! user (or the paper's experimental setup) drives it.

use ga_ip::ga_core::rngmod::RngModule;
use ga_ip::ga_ehw::vrc::PERFECT_FITNESS;
use ga_ip::prelude::*;

/// Switching between fitness functions at runtime (the multi-FEM bank)
/// produces results consistent with dedicated single-function systems.
#[test]
fn fitfunc_select_switches_without_state_leakage() {
    let slots: Vec<FemSlot> = TestFunction::ALL
        .iter()
        .map(|&f| FemSlot::Lookup(LookupFem::for_function(f)))
        .collect();
    let mut shared = GaSystem::new(FemBank::new(slots));
    let params = GaParams::new(16, 8, 10, 1, 0x2961);

    for (select, &f) in TestFunction::ALL.iter().enumerate() {
        shared.fitfunc_select = select as u8;
        let shared_run = shared.program_and_run(&params, 100_000_000).unwrap();

        let mut dedicated = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
            LookupFem::for_function(f),
        )]));
        let dedicated_run = dedicated.program_and_run(&params, 100_000_000).unwrap();
        assert_eq!(
            shared_run.best,
            dedicated_run.best,
            "{}: bank result differs from dedicated system",
            f.name()
        );
        assert_eq!(shared_run.history, dedicated_run.history);
    }
}

/// The external-FEM path (hybrid EHW, Fig. 5) gives the same results as
/// an internal FEM computing the same function.
#[test]
fn external_fem_equals_internal_fem() {
    let target = Vrc::new(0x1B26).truth_table();
    let fault = Some(Fault::StuckAt {
        cell: 6,
        value: false,
    });
    let params = GaParams::new(16, 8, 10, 1, 0x061F);

    // Internal: tabulated healing fitness in block ROM.
    let rom =
        ga_ip::ga_fitness::rom::FitnessRom::tabulate_fn(|cfg| healing_fitness(cfg, target, fault));
    let mut internal = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(LookupFem::new(rom))]));
    let run_i = internal.program_and_run(&params, 200_000_000).unwrap();

    // External: the VRC fabric behind the ext ports.
    let mut external = GaSystem::new(FemBank::new(vec![FemSlot::External]))
        .with_external_fem(Box::new(VrcFem::new(target, fault)));
    let run_e = external.program_and_run(&params, 200_000_000).unwrap();

    assert_eq!(run_i.best, run_e.best);
    assert_eq!(run_i.history, run_e.history);
    // The external path is slower per evaluation (16-pattern sweep +
    // port hops) — that cost must be visible in the cycle counts.
    assert!(run_e.cycles > run_i.cycles);
}

/// The GA core works unchanged with a different RNG implementation
/// (§III-B.7: "the operation of the GA core is independent of the RNG
/// implementation").
#[test]
fn lfsr_rng_module_drives_the_core() {
    let params = GaParams::new(32, 32, 10, 1, 0x2961);
    let mut ca = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(TestFunction::F3),
    )]));
    let mut lfsr = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(TestFunction::F3),
    )]))
    .with_rng(RngModule::new_lfsr(1));

    let run_ca = ca.program_and_run(&params, 200_000_000).unwrap();
    let run_lfsr = lfsr.program_and_run(&params, 200_000_000).unwrap();
    // Different generators ⇒ different trajectories, but both optimize.
    assert_ne!(run_ca.history, run_lfsr.history);
    assert!(run_ca.best.fitness >= 2900);
    assert!(run_lfsr.best.fitness >= 2900);
}

/// Preset modes run without any initialization (§III-C.1's ASIC
/// fault-tolerance path) and match the Table IV parameters.
#[test]
fn preset_modes_bypass_initialization() {
    let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(TestFunction::F2),
    )]));
    sys.preset = 0b01; // Small: pop 32, 512 gens, 12/1
    let run = sys.run(500_000_000).unwrap();
    assert_eq!(
        run.history.len(),
        513,
        "512 generations + initial population"
    );
    let programmed = sys.modules().core.programmed_params();
    assert_eq!(programmed, GaParams::preset(PresetMode::Small).unwrap());
    assert!(
        run.best.fitness >= 3000,
        "F2 after 512 generations: {}",
        run.best.fitness
    );
}

/// Full intrinsic-healing mission: fault strikes, GA restores function.
#[test]
fn ehw_healing_mission_recovers() {
    let target = Vrc::new(0x1B26).truth_table();
    let fault = Fault::StuckAt {
        cell: 6,
        value: false,
    };
    assert!(
        healing_fitness(0x1B26, target, Some(fault)) < PERFECT_FITNESS,
        "fault must degrade the golden configuration"
    );
    let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::External]))
        .with_external_fem(Box::new(VrcFem::new(target, Some(fault))));
    let params = GaParams::new(64, 64, 10, 2, 0xB342);
    let run = sys.program_and_run(&params, 2_000_000_000).unwrap();
    assert_eq!(
        run.best.fitness, PERFECT_FITNESS,
        "healing failed: best {:#06X} scores {}",
        run.best.chrom, run.best.fitness
    );
}

/// The engine registry serves every backend end to end — all seven
/// kinds enumerated, every 16-bit engine bit-identical to behavioral
/// on *both* workload kinds (classic fitness function and VRC
/// healing), the 32-bit composite self-consistent on its own width,
/// and healing correctly refused where it cannot run.
#[test]
fn registry_matrix_covers_all_seven_backends_and_both_workloads() {
    use ga_engine::{BackendKind, Limits, RunSpec, Workload};

    let registry = ga_engine::global();
    let kinds = registry.kinds();
    assert_eq!(kinds.len(), 7, "seven registered backends: {kinds:?}");
    for kind in [
        BackendKind::Behavioral,
        BackendKind::RtlInterp,
        BackendKind::BitSim64,
        BackendKind::BitSim128,
        BackendKind::BitSim256,
        BackendKind::Swga,
        BackendKind::Rtl32,
    ] {
        assert!(kinds.contains(&kind), "{} missing", kind.name());
    }

    let heal = Workload::VrcHeal {
        target: Vrc::new(0x1B26).truth_table(),
        fault: Fault::StuckAt {
            cell: 2,
            value: true,
        },
    };
    let params = GaParams::new(16, 8, 10, 1, 0x2961);
    let run16 = |kind: BackendKind, workload: Workload| {
        let engine = registry.get(kind).expect("registered");
        let spec = RunSpec {
            width: 16,
            workload,
            params,
            deadline_ms: None,
        };
        let prepared = engine.prepare(spec).expect("16-bit spec admitted");
        engine.run(&prepared, &Limits::default()).expect("runs")
    };

    for workload in [Workload::Function(TestFunction::F3), heal] {
        let reference = run16(BackendKind::Behavioral, workload);
        assert_eq!(
            workload.eval_u16(reference.best_chrom as u16),
            reference.best_fitness,
            "reported best must re-evaluate to its fitness"
        );
        for &kind in &registry.supporting_width(16) {
            let got = run16(kind, workload);
            assert_eq!(
                got.trajectory,
                reference.trajectory,
                "{} diverged from behavioral on {workload:?}",
                kind.name()
            );
            assert_eq!(
                (got.best_chrom, got.best_fitness),
                (reference.best_chrom, reference.best_fitness)
            );
        }
    }

    // The 32-bit composite runs function workloads at its own width…
    let engine = registry.get(BackendKind::Rtl32).expect("registered");
    let spec = RunSpec {
        width: 32,
        workload: ga_engine::Workload::Function(TestFunction::Mbf6_2),
        params,
        deadline_ms: None,
    };
    let prepared = engine.prepare(spec).expect("32-bit function admitted");
    let wide = engine.run(&prepared, &Limits::default()).expect("runs");
    assert_eq!(
        TestFunction::Mbf6_2.eval_u32_split(wide.best_chrom),
        wide.best_fitness
    );

    // …but refuses the healing workload: a VRC configuration is 16
    // bits, so width-32 admission must fail with a typed error.
    assert!(
        engine
            .prepare(RunSpec {
                width: 32,
                workload: heal,
                params,
                deadline_ms: None,
            })
            .is_err(),
        "rtl32 must not admit a 16-bit healing chromosome at width 32"
    );
}

/// Scan-chain test mode through the full system: freezing the core and
/// rotating the chain leaves a subsequent run unchanged.
#[test]
fn scan_rotation_is_transparent_to_operation() {
    let params = GaParams::new(8, 4, 10, 1, 0xAAAA);
    let mk = || {
        GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
            LookupFem::for_function(TestFunction::F3),
        )]))
    };
    let mut plain = mk();
    let baseline = plain.program_and_run(&params, 100_000_000).unwrap();

    let mut scanned = mk();
    scanned.program(&params);
    // Enter test mode and rotate the full chain with scanout → scanin
    // loopback. The scanout register lags the pop by one cycle, so a
    // lossless rotation takes SCAN_LENGTH + 1 shifts (the first
    // fed bit is junk and falls off the far end).
    let mut feedback = false;
    for _ in 0..=ga_ip::ga_core::GaCoreHw::SCAN_LENGTH {
        scanned.step(UserIn {
            test: true,
            scanin: feedback,
            ..Default::default()
        });
        feedback = scanned.modules().core.out().scanout;
    }
    scanned.step(UserIn {
        test: false,
        ..Default::default()
    });
    let after_scan = scanned.run(100_000_000).unwrap();
    assert_eq!(baseline.best, after_scan.best);
    assert_eq!(baseline.history, after_scan.history);
}

/// VCD waveform capture of a full run: the document must contain the
/// interface signals and real activity (the ModelSim/GTKWave view of
/// the paper's verification flow).
#[test]
fn vcd_capture_of_a_run() {
    let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(TestFunction::F3),
    )]));
    sys.start_vcd();
    let params = GaParams::new(8, 2, 10, 1, 0x2961);
    sys.program_and_run(&params, 1_000_000).unwrap();
    let vcd = sys.finish_vcd().expect("capture was enabled");
    for var in ["candidate", "fit_request", "GA_done", "mem_address", "rn"] {
        assert!(vcd.contains(var), "missing declared var {var}");
    }
    // Activity: candidate bus toggles many times, GA_done rises once.
    assert!(
        vcd.matches('#').count() > 100,
        "too few timestamped changes"
    );
    assert!(vcd.contains("$enddefinitions $end"));
    // Capture is one-shot: a second finish returns None.
    assert!(sys.finish_vcd().is_none());
}

/// The optimizer's trajectory is invariant to fitness-module latency:
/// the handshake decouples *when* a fitness arrives from *what* the GA
/// does with it, so lookup / CORDIC / wire-delayed modules must produce
/// identical histories (only cycle counts differ).
#[test]
fn results_invariant_to_fem_latency() {
    let params = GaParams::new(16, 8, 10, 1, 0x2961);
    let f = TestFunction::Mbf6_2;
    let run = |fem: FemSlot| {
        let mut sys = GaSystem::new(FemBank::new(vec![fem]));
        sys.program_and_run(&params, 1_000_000_000).unwrap()
    };
    let lookup = run(FemSlot::Lookup(LookupFem::for_function(f)));
    let delayed = {
        let mut sys =
            GaSystem::new(FemBank::new(vec![FemSlot::External])).with_external_fem(Box::new(
                ga_ip::ga_fitness::LatencyFem::new(LookupFem::for_function(f), 17),
            ));
        sys.program_and_run(&params, 1_000_000_000).unwrap()
    };
    assert_eq!(
        lookup.history, delayed.history,
        "latency changed the search"
    );
    assert_eq!(lookup.best, delayed.best);
    assert!(delayed.cycles > lookup.cycles);

    // CORDIC agrees wherever its ±1-LSB rounding doesn't flip a
    // comparison; assert the weaker invariant that it still finds a
    // best within 1 LSB of the lookup run's.
    let cordic = run(FemSlot::Cordic(CordicFem::new(f)));
    let d = (cordic.best.fitness as i32 - lookup.best.fitness as i32).abs();
    assert!(
        d <= 100,
        "CORDIC best diverged: {} vs {}",
        cordic.best.fitness,
        lookup.best.fitness
    );
}

/// The paper's DCM clocking: GA module at 50 MHz, application modules
/// at 200 MHz (ratio 4). The faster FEM domain must not change the
/// search trajectory — only shorten the handshakes in GA cycles.
#[test]
fn fast_application_clock_domain_preserves_results() {
    let params = GaParams::new(16, 8, 10, 1, 0x2961);
    let f = TestFunction::Mbf6_2;
    let run_with_ratio = |ratio: u32| {
        let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
            LookupFem::for_function(f),
        )]));
        sys.fast_domain_ratio = ratio;
        sys.program_and_run(&params, 1_000_000_000).unwrap()
    };
    let base = run_with_ratio(1);
    let dcm = run_with_ratio(4);
    assert_eq!(base.history, dcm.history, "clock ratio changed the search");
    assert_eq!(base.best, dcm.best);
    assert!(
        dcm.cycles < base.cycles,
        "4x application clock should shorten fitness handshakes: {} vs {}",
        dcm.cycles,
        base.cycles
    );

    // The effect is larger when the FEM itself is slow (CORDIC).
    let slow = |ratio: u32| {
        let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Cordic(CordicFem::new(f))]));
        sys.fast_domain_ratio = ratio;
        sys.program_and_run(&params, 1_000_000_000).unwrap().cycles
    };
    let s1 = slow(1);
    let s4 = slow(4);
    assert!(
        (s1 - s4) as f64 / s1 as f64 > 0.15,
        "CORDIC at 4x clock should save >15% of cycles: {s1} vs {s4}"
    );
}

/// §III-C.1: "failure of the GA parameter initialization logic can be
/// tolerated by running the GA core in one of the three preset modes."
/// We induce the failure by scanning an all-zero pattern into every
/// register (pop = 0, gens = 0, seed = 0) and show that user mode is
/// degenerate while preset mode recovers fully.
#[test]
fn preset_mode_recovers_from_corrupted_parameters() {
    let mk = || {
        GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
            LookupFem::for_function(TestFunction::F2),
        )]))
    };
    let corrupt = |sys: &mut GaSystem| {
        // Scan in zeros over the whole chain (the SEU storm).
        for _ in 0..=ga_ip::ga_core::GaCoreHw::SCAN_LENGTH {
            sys.step(UserIn {
                test: true,
                scanin: false,
                ..Default::default()
            });
        }
        sys.step(UserIn::default());
        let p = sys.modules().core.programmed_params();
        assert_eq!(p.pop_size, 0, "corruption did not land");
        assert_eq!(p.n_gens, 0);
    };

    // User mode with zeroed registers: degenerate (0 generations —
    // GA_done fires with no populations ever evaluated).
    let mut broken = mk();
    corrupt(&mut broken);
    let run = broken.run(10_000_000).unwrap();
    // pop = 0 makes the init-population counter wrap through 256 before
    // the (gen 0 == n_gens 0) exit: one degenerate "generation", no
    // evolution at all.
    assert!(run.history.len() <= 1, "zeroed parameters evolved anyway");

    // Preset mode on the same corrupted core: full recovery.
    let mut healed = mk();
    corrupt(&mut healed);
    healed.preset = 0b01; // Table IV Small
    let run = healed.run(500_000_000).unwrap();
    assert_eq!(run.history.len(), 513);
    assert!(
        run.best.fitness >= 3000,
        "preset run result: {}",
        run.best.fitness
    );
}

/// The fitness handshake obeys its four-phase contract for every FEM
/// implementation, checked cycle-by-cycle by the protocol monitor
/// (the executable form of the paper's "simplicity of all the
/// interfacing protocols" claim).
#[test]
fn fitness_protocol_holds_for_all_fem_kinds() {
    let params = GaParams::new(16, 6, 10, 1, 0x2961);
    for (name, slot) in [
        (
            "lookup",
            FemSlot::Lookup(LookupFem::for_function(TestFunction::Mbf6_2)),
        ),
        (
            "cordic",
            FemSlot::Cordic(CordicFem::new(TestFunction::Mbf6_2)),
        ),
    ] {
        let mut sys = GaSystem::new(FemBank::new(vec![slot]));
        sys.enable_protocol_monitor();
        sys.program_and_run(&params, 1_000_000_000).unwrap();
        let mon = sys.protocol_monitor().unwrap();
        assert!(
            mon.violations().is_empty(),
            "{name}: {:?}",
            mon.violations()
        );
        assert_eq!(
            mon.transactions(),
            16 + 6 * 15,
            "{name}: one transaction per fitness evaluation"
        );
    }
}

/// Mid-run `start_GA` pulses and initialization-bus noise are ignored:
/// the optimizer only honors them in Idle/Done (robustness the paper's
/// drop-in-IP story depends on).
#[test]
fn core_ignores_spurious_inputs_mid_run() {
    let params = GaParams::new(16, 8, 10, 1, 0xB342);
    let mk = || {
        GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
            LookupFem::for_function(TestFunction::F2),
        )]))
    };
    let mut clean = mk();
    let baseline = clean.program_and_run(&params, 1_000_000_000).unwrap();

    let mut noisy = mk();
    noisy.program(&params);
    noisy.step(UserIn {
        start_ga: true,
        ..Default::default()
    });
    let mut k = 0u64;
    while !noisy.modules().core.out().ga_done {
        // Glitch the user-side inputs every few cycles.
        let glitch = k % 7 == 3;
        noisy.step(UserIn {
            start_ga: glitch,
            data_valid: glitch,
            index: 5,
            value: 0xDEAD,
            ..Default::default()
        });
        k += 1;
        assert!(k < 1_000_000_000, "noisy run hung");
    }
    assert_eq!(noisy.modules().core.out().candidate, baseline.best.chrom);
    assert_eq!(
        noisy.modules().core.programmed_params(),
        params,
        "init-bus noise must not reprogram a running core"
    );
}

/// Every fitness value the core ever consumes is checked against the
/// ROM ground truth with a transaction scoreboard — not just the final
/// answer (the UVM-style completeness check).
#[test]
fn scoreboard_checks_every_fitness_transaction() {
    use ga_ip::hwsim::Scoreboard;

    let f = TestFunction::Mbf7_2;
    let params = GaParams::new(16, 6, 10, 1, 0x061F);
    let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(f),
    )]));
    sys.program(&params);

    let mut sb: Scoreboard<u16, u16> = Scoreboard::new();
    let mut prev_req = false;
    let mut prev_valid = false;
    sys.step(UserIn {
        start_ga: true,
        ..Default::default()
    });
    let mut guard = 0u64;
    while !sys.modules().core.out().ga_done {
        let o = sys.modules().core.out();
        let fem_o = sys.modules().fems.out(0, 0, false);
        if o.fit_request && !prev_req {
            sb.expect(o.candidate, f.eval_u16(o.candidate));
        }
        if fem_o.fit_valid && !prev_valid {
            sb.observe(fem_o.fit_value);
        }
        prev_req = o.fit_request;
        prev_valid = fem_o.fit_valid;
        sys.step(UserIn::default());
        guard += 1;
        assert!(guard < 100_000_000, "run hung");
    }
    sb.assert_clean();
    assert_eq!(
        sb.completed(),
        16 + 6 * 15,
        "one transaction per evaluation"
    );
}
