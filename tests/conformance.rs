//! Cross-engine conformance, driven off the engine registry: every
//! registered 16-bit backend (`behavioral`, `rtl`, `bitsim64`, `swga`)
//! must produce **identical trajectories generation-for-generation** —
//! same best, same population fitness sum — over a matrix of seeds ×
//! Table IV preset shapes × fitness modules, and the 32-bit `rtl32`
//! composite must match the behavioral dual-core model on the same
//! seeds. No backend is named in the drive loop: the matrix enumerates
//! `ga_engine::global()`, so registering a sixth engine automatically
//! enrolls it here.
//!
//! The default matrix is the quick one CI runs; set
//! `GA_CONFORMANCE_FULL=1` for all six fitness functions and longer
//! generation budgets. (Generation counts are clamped below the
//! presets' full budgets — the RTL interpreter at pop 128 × 4096 gens
//! is minutes per cell, and per-generation equality at a shorter
//! horizon implies it at the full one: every generation is a pure
//! function of the previous state.)
//!
//! The proptest half covers the serving layer's job packing: any ≤64
//! compatible jobs packed into one 64-lane netlist run must finish
//! with results equal to each job run solo, and any ≤256-job batch on
//! the wide `bitsim128`/`bitsim256` backends must be bit-identical to
//! solo `bitsim64` runs of the same jobs (idle tail lanes sit at the
//! CA's all-zero fixed point and never contaminate a result).

use carng::seeds::PRESET_SEEDS;
use ga_core::scaling::GaEngine32;
use ga_engine::{trajectory32, BackendKind, Limits, RunOutcome, RunSpec};
use ga_ip::prelude::*;
use ga_serve::{serve_batch, GaJob, ServeConfig};
use proptest::prelude::*;

/// One cell of the conformance matrix.
#[derive(Debug, Clone, Copy)]
struct Cell {
    f: TestFunction,
    params: GaParams,
}

fn full() -> bool {
    std::env::var("GA_CONFORMANCE_FULL").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Seeds × Table IV preset shapes × fitness modules. The preset shapes
/// (population, crossover/mutation thresholds) are the paper's
/// Small/Medium/Large rows; generations are clamped as documented
/// above (4 quick, 32 full).
fn matrix() -> Vec<Cell> {
    let gens = if full() { 32 } else { 4 };
    let shapes: [(u8, u8, u8); 3] = [(32, 12, 1), (64, 13, 2), (128, 14, 3)];
    let fems: &[TestFunction] = if full() {
        &TestFunction::ALL
    } else {
        &[TestFunction::F3, TestFunction::Mbf6_2]
    };
    let mut cells = Vec::new();
    for &f in fems {
        for &(pop, xt, mt) in &shapes {
            for &seed in &PRESET_SEEDS {
                cells.push(Cell {
                    f,
                    params: GaParams::new(pop, gens, xt, mt, seed),
                });
            }
        }
    }
    cells
}

/// Dispatch one cell to a registered backend at its native width.
fn run_via(kind: BackendKind, cell: &Cell) -> RunOutcome {
    let engine = ga_engine::global().get(kind).expect("backend registered");
    let spec = RunSpec {
        width: engine.capabilities().widths[0],
        workload: ga_engine::Workload::Function(cell.f),
        params: cell.params,
        deadline_ms: None,
    };
    let prepared = engine.prepare(spec).expect("conformance cell admitted");
    engine
        .run(&prepared, &Limits::default())
        .expect("conformance cell runs")
}

#[test]
fn all_width16_engines_agree_generation_for_generation() {
    let kinds = ga_engine::global().supporting_width(16);
    assert!(
        kinds.len() >= 4,
        "behavioral, rtl, bitsim64 and swga must all serve width 16"
    );
    let cells = matrix();
    for cell in &cells {
        let reference = run_via(BackendKind::Behavioral, cell);
        assert_eq!(
            reference.trajectory.len(),
            cell.params.n_gens as usize + 1,
            "trajectory covers gen 0..=n_gens"
        );
        for &kind in kinds.iter().filter(|&&k| k != BackendKind::Behavioral) {
            let got = run_via(kind, cell);
            assert_eq!(
                got.trajectory,
                reference.trajectory,
                "{} trajectory diverged from behavioral on {:?} pop {} seed {:#06x}",
                kind.name(),
                cell.f,
                cell.params.pop_size,
                cell.params.seed
            );
            assert_eq!(
                (got.best_chrom, got.best_fitness),
                (reference.best_chrom, reference.best_fitness),
                "{} final best differs",
                kind.name()
            );
            assert_eq!(got.conv_gen, reference.conv_gen, "{}", kind.name());
        }
    }
}

#[test]
fn rtl32_composite_matches_the_dual_core_model() {
    // Width-32 conformance: the ganged hardware system behind the
    // registry's `rtl32` entry against the behavioral dual-core engine
    // (second RNG seeded with the complemented seed, like the hardware).
    for &seed in &PRESET_SEEDS {
        let f = TestFunction::Mbf6_2;
        let params = GaParams::new(16, 6, 10, 1, seed);
        let got = run_via(BackendKind::Rtl32, &Cell { f, params });
        let oracle = GaEngine32::new(params, CaRng::new(seed), CaRng::new(!seed), move |c| {
            f.eval_u32_split(c)
        })
        .run();
        assert_eq!(
            (got.best_chrom, got.best_fitness),
            (oracle.best.chrom, oracle.best.fitness),
            "rtl32 final best diverged from the dual-core model, seed {seed:#06x}"
        );
        assert_eq!(
            got.trajectory,
            trajectory32(&oracle.history),
            "rtl32 trajectory diverged, seed {seed:#06x}"
        );
    }
}

#[test]
fn kill_and_resume_at_every_epoch_boundary_is_bit_identical() {
    // Island-model checkpoint/resume conformance, registry-driven: for
    // every stepping backend, run the ring to completion, then kill it
    // at *each* epoch barrier in turn and resume from that barrier's
    // checkpoint — on every stepping backend (snapshots are
    // backend-neutral, so a behavioral checkpoint must resume on
    // bitsim64 and vice versa). The resumed trajectory must equal the
    // uninterrupted run generation for generation, which the epoch
    // bundles pin barrier by barrier.
    use ga_engine::IslandsEngine;
    let steppers: Vec<BackendKind> = ga_engine::global()
        .engines()
        .filter(|e| e.capabilities().stepping && e.capabilities().widths.contains(&16))
        .map(|e| e.kind())
        .collect();
    assert!(
        steppers.contains(&BackendKind::Behavioral) && steppers.contains(&BackendKind::BitSim64),
        "behavioral and bitsim64 must both expose stepping handles, got {steppers:?}"
    );
    let config = ga_core::islands::IslandConfig {
        islands: 3,
        epoch: 4,
        epochs: 3,
    };
    for &seed in &PRESET_SEEDS {
        let spec = RunSpec {
            width: 16,
            workload: ga_engine::Workload::Function(TestFunction::Bf6),
            params: GaParams::new(16, config.epoch * config.epochs, 10, 1, seed),
            deadline_ms: None,
        };
        // Reference trajectory: behavioral, uninterrupted, with the
        // bundle at every barrier recorded.
        let behavioral = ga_engine::global().get(BackendKind::Behavioral).unwrap();
        let composite = IslandsEngine::new(behavioral, config).expect("behavioral steps");
        let mut driver = composite.start(spec).expect("starts");
        let mut bundles = Vec::new();
        while !driver.done() {
            bundles.push(driver.step_epoch());
        }
        let reference = driver.finish();

        for &kind in &steppers {
            let engine = ga_engine::global().get(kind).expect("registered");
            let resumer = IslandsEngine::new(engine, config).expect("steps");
            // The uninterrupted run agrees across backends…
            assert_eq!(
                resumer.run(spec).expect("runs"),
                reference,
                "{} uninterrupted island run diverged, seed {seed:#06x}",
                kind.name()
            );
            // …and so does the kill at every barrier.
            for bundle in &bundles {
                let mut resumed = resumer.resume(spec, bundle).expect("resumes");
                let mut at = bundle.epochs_done as usize;
                while !resumed.done() {
                    let got = resumed.step_epoch();
                    assert_eq!(
                        got,
                        bundles[at],
                        "{} barrier {} diverged after resuming from barrier {}, seed {seed:#06x}",
                        kind.name(),
                        at + 1,
                        bundle.epochs_done
                    );
                    at += 1;
                }
                assert_eq!(
                    resumed.finish(),
                    reference,
                    "{} resume from barrier {} diverged, seed {seed:#06x}",
                    kind.name(),
                    bundle.epochs_done
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The job-packing invariant: any number of compatible jobs up to
    /// the 64-lane width — crossing the one-full-pack boundary —
    /// produces, per job, exactly the result of running that job solo.
    #[test]
    fn packed_jobs_equal_solo_runs(
        n_jobs in 1usize..=80, // > 64: forces a full pack plus a tail pack
        pop in 4u8..=20,
        n_gens in 1u32..=3,
        seed0 in 0u16..=u16::MAX,
        func in 0usize..6,
    ) {
        let f = TestFunction::ALL[func];
        let jobs: Vec<GaJob> = (0..n_jobs)
            .map(|i| {
                let seed = seed0.wrapping_add((i as u16).wrapping_mul(7919));
                GaJob::new(f, BackendKind::BitSim64, GaParams::new(pop, n_gens, 10, 1, seed))
            })
            .collect();
        let cfg = ServeConfig { threads: 2, ..ServeConfig::default() };
        let packed = serve_batch(&jobs, &cfg);
        prop_assert_eq!(packed.results.len(), n_jobs);
        for (i, (job, r)) in jobs.iter().zip(&packed.results).enumerate() {
            prop_assert_eq!(r.job, i);
            let solo = serve_batch(std::slice::from_ref(job), &cfg);
            prop_assert_eq!(
                &r.outcome, &solo.results[0].outcome,
                "job {} (seed {:#06x}) packed != solo", i, job.params.seed
            );
        }
    }

    /// The wide-lane packing invariant: a batch of up to 256 compatible
    /// jobs on `bitsim128` or `bitsim256` — crossing every 64-lane word
    /// boundary of the widened simulator — produces, per job, exactly
    /// the result of running that job solo on `bitsim64`.
    #[test]
    fn wide_packed_jobs_equal_solo_bitsim64_runs(
        n_jobs in 1usize..=256,
        wide_sel in 0usize..2,
        pop in 4u8..=16,
        n_gens in 1u32..=2,
        seed0 in 0u16..=u16::MAX,
        func in 0usize..6,
    ) {
        let wide = [BackendKind::BitSim128, BackendKind::BitSim256][wide_sel];
        let f = TestFunction::ALL[func];
        let mk = |backend, i: usize| {
            let seed = seed0.wrapping_add((i as u16).wrapping_mul(12007));
            GaJob::new(f, backend, GaParams::new(pop, n_gens, 10, 1, seed))
        };
        let jobs: Vec<GaJob> = (0..n_jobs).map(|i| mk(wide, i)).collect();
        let cfg = ServeConfig { threads: 2, ..ServeConfig::default() };
        let packed = serve_batch(&jobs, &cfg);
        prop_assert_eq!(packed.results.len(), n_jobs);
        for i in 0..n_jobs {
            let r = &packed.results[i];
            prop_assert_eq!(r.job, i);
            prop_assert_eq!(r.backend, wide, "wide lanes must not degrade");
            let solo = serve_batch(&[mk(BackendKind::BitSim64, i)], &cfg);
            prop_assert_eq!(
                &r.outcome, &solo.results[0].outcome,
                "job {} on {} != solo bitsim64", i, wide.name()
            );
        }
    }
}
