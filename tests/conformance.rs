//! Cross-engine conformance: the behavioral engine, the software
//! reference (`swga`), the cycle-accurate RTL interpreter, and a
//! bitsim CA-RNG lane must produce **identical best-fitness
//! trajectories generation-for-generation** over a matrix of seeds ×
//! Table IV preset shapes × fitness modules.
//!
//! The default matrix is the quick one CI runs; set
//! `GA_CONFORMANCE_FULL=1` for all six fitness functions and longer
//! generation budgets. (Generation counts are clamped below the
//! presets' full budgets — the RTL interpreter at pop 128 × 4096 gens
//! is minutes per cell, and per-generation equality at a shorter
//! horizon implies it at the full one: every generation is a pure
//! function of the previous state.)
//!
//! The proptest half covers the serving layer's job packing: any ≤64
//! compatible jobs packed into one 64-lane netlist run must finish
//! with results equal to each job run solo.

use carng::seeds::PRESET_SEEDS;
use ga_ip::prelude::*;
use ga_serve::{ca_lane_streams, draws_per_run};
use ga_serve::{serve_batch, BackendKind, GaJob, ServeConfig, StreamRng};
use proptest::prelude::*;

/// One cell of the conformance matrix.
#[derive(Debug, Clone, Copy)]
struct Cell {
    f: TestFunction,
    params: GaParams,
}

fn full() -> bool {
    std::env::var("GA_CONFORMANCE_FULL").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Seeds × Table IV preset shapes × fitness modules. The preset shapes
/// (population, crossover/mutation thresholds) are the paper's
/// Small/Medium/Large rows; generations are clamped as documented
/// above (4 quick, 32 full).
fn matrix() -> Vec<Cell> {
    let gens = if full() { 32 } else { 4 };
    let shapes: [(u8, u8, u8); 3] = [(32, 12, 1), (64, 13, 2), (128, 14, 3)];
    let fems: &[TestFunction] = if full() {
        &TestFunction::ALL
    } else {
        &[TestFunction::F3, TestFunction::Mbf6_2]
    };
    let mut cells = Vec::new();
    for &f in fems {
        for &(pop, xt, mt) in &shapes {
            for &seed in &PRESET_SEEDS {
                cells.push(Cell {
                    f,
                    params: GaParams::new(pop, gens, xt, mt, seed),
                });
            }
        }
    }
    cells
}

/// Best-fitness trajectory: one value per generation, gen 0 included.
type Trajectory = Vec<(u32, u16)>;

fn trajectory_of(history: &[ga_ip::ga_core::GenStats]) -> Trajectory {
    history.iter().map(|s| (s.gen, s.best.fitness)).collect()
}

fn behavioral(cell: &Cell) -> Trajectory {
    let f = cell.f;
    let run = GaEngine::new(cell.params, CaRng::new(cell.params.seed), move |c| {
        f.eval_u16(c)
    })
    .run();
    trajectory_of(&run.history)
}

fn swga_reference(cell: &Cell) -> Trajectory {
    let f = cell.f;
    let run = swga::CountingGa::new(cell.params, move |c| f.eval_u16(c)).run();
    trajectory_of(&run.history)
}

fn rtl(cell: &Cell) -> Trajectory {
    let mut sys = GaSystem::new(FemBank::new(vec![FemSlot::Lookup(
        LookupFem::for_function(cell.f),
    )]));
    let run = sys
        .program_and_run(&cell.params, 2_000_000_000)
        .expect("watchdog");
    trajectory_of(&run.history)
}

fn bitsim_lane(cell: &Cell) -> Trajectory {
    let f = cell.f;
    let stream = ca_lane_streams(&[cell.params.seed], draws_per_run(&cell.params) as usize)
        .pop()
        .expect("one lane");
    let run = GaEngine::new(cell.params, StreamRng::new(stream), move |c| f.eval_u16(c)).run();
    trajectory_of(&run.history)
}

#[test]
fn all_engines_agree_generation_for_generation() {
    let cells = matrix();
    for cell in &cells {
        let reference = behavioral(cell);
        assert_eq!(
            reference.len(),
            cell.params.n_gens as usize + 1,
            "history covers gen 0..=n_gens"
        );
        for (name, got) in [
            ("swga", swga_reference(cell)),
            ("rtl", rtl(cell)),
            ("bitsim-lane", bitsim_lane(cell)),
        ] {
            assert_eq!(
                got, reference,
                "{name} trajectory diverged from behavioral on {:?} pop {} seed {:#06x}",
                cell.f, cell.params.pop_size, cell.params.seed
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The job-packing invariant: any number of compatible jobs up to
    /// the 64-lane width — crossing the one-full-pack boundary —
    /// produces, per job, exactly the result of running that job solo.
    #[test]
    fn packed_jobs_equal_solo_runs(
        n_jobs in 1usize..=80, // > 64: forces a full pack plus a tail pack
        pop in 4u8..=20,
        n_gens in 1u32..=3,
        seed0 in 0u16..=u16::MAX,
        func in 0usize..6,
    ) {
        let f = TestFunction::ALL[func];
        let jobs: Vec<GaJob> = (0..n_jobs)
            .map(|i| {
                let seed = seed0.wrapping_add((i as u16).wrapping_mul(7919));
                GaJob::new(f, BackendKind::BitSim64, GaParams::new(pop, n_gens, 10, 1, seed))
            })
            .collect();
        let cfg = ServeConfig { threads: 2, ..ServeConfig::default() };
        let packed = serve_batch(&jobs, &cfg);
        prop_assert_eq!(packed.results.len(), n_jobs);
        for (i, (job, r)) in jobs.iter().zip(&packed.results).enumerate() {
            prop_assert_eq!(r.job, i);
            let solo = serve_batch(std::slice::from_ref(job), &cfg);
            prop_assert_eq!(
                &r.outcome, &solo.results[0].outcome,
                "job {} (seed {:#06x}) packed != solo", i, job.params.seed
            );
        }
    }
}
