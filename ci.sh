#!/usr/bin/env bash
# CI gate: formatting, lints, the full test suite, and the static
# design-rule check over both shipping elaborations. Any failure —
# including a galint error-severity finding — fails the build.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace"
cargo test --workspace -q

echo "== galint --format json"
cargo run -q --release -p galint --bin galint -- --format json

echo "== galint --observability (424-site static fault report)"
cargo run -q --release -p galint --bin galint -- --observability > /dev/null

echo "== bench smoke (quick sweep + BENCH_*.json schema + throughput floor)"
# Reduced workloads: Table V at 4 generations, profile with shortened
# measurement loops. benchcheck validates the report schema and fails
# the build if the 64-lane compiled simulator drops below a (very
# conservative) gate-evaluation throughput floor.
cargo build -q --release -p ga-bench --bin table5 --bin profile --bin benchcheck
SMOKE_DIR=target/bench-smoke
mkdir -p "$SMOKE_DIR"
GA_BENCH_OUT="$SMOKE_DIR" GA_BENCH_GENS=4 ./target/release/table5 > /dev/null
GA_BENCH_OUT="$SMOKE_DIR" GA_BENCH_QUICK=1 ./target/release/profile > /dev/null
./target/release/benchcheck "$SMOKE_DIR/BENCH_table5.json" 'runs>=10'
# Wide-lane floors: the 256-lane simulator must beat a conservative
# absolute throughput floor AND deliver at least 2x the 64-lane rate —
# the acceptance criterion for the word-array widening.
./target/release/benchcheck "$SMOKE_DIR/BENCH_profile.json" \
    'bitsim64_gates_per_sec>=5e7' 'bitsim128_gates_per_sec>=1e8' \
    'bitsim256_gates_per_sec>=2e8' 'bitsim256_speedup_vs_64>=2'

echo "== fault-injection smoke (scan + netlist campaigns, quick grid)"
# Quick grid: every 8th scan position and one injection cycle per
# netlist site. The campaign invariant — every injection classified
# exactly once (masked+detected+corrupted+hung == injected) — is pinned
# by the paired unclassified floors/ceilings; lane leaks (a fault
# escaping its 64-lane word slot) must never happen.
cargo build -q --release -p ga-bench --bin fault_campaign
GA_BENCH_OUT="$SMOKE_DIR" GA_BENCH_QUICK=1 ./target/release/fault_campaign > /dev/null
./target/release/benchcheck "$SMOKE_DIR/BENCH_fault.json" \
    'injected>=201' 'unclassified>=0' 'unclassified<=0' \
    'class_sum_gap<=0' 'net_lane_leaks<=0' 'scan_landed>=153'

echo "== fault-injection static cross-check (full grid, galint observability join)"
# The headline soundness gate: rerun the full 1416-injection grid,
# verify its aggregates match the committed BENCH_fault.json, and join
# every injection with galint's static observability verdict — a
# statically-unobservable site that was dynamically detected, corrupted
# or hung is an unsound static claim and fails the build. benchcheck
# additionally pins: zero unsound sites, and the statically-masked
# population is present (16 seed sites, 48 confirmed-masked injections).
GA_BENCH_OUT="$SMOKE_DIR" ./target/release/fault_campaign --xcheck > /dev/null
./target/release/benchcheck "$SMOKE_DIR/BENCH_fault.json" \
    'xcheck_unsound_sites<=0' 'static_unobservable_sites>=16' \
    'static_unobservable_sites<=16' 'static_masked_injections>=48'

echo "== testgen smoke (GA-evolved fault-coverage probes, strided grid)"
# The GA evolves (seed, window, polarity) probe sets against the fault
# harness; the evolved set must strictly beat a size-matched random
# baseline and — the static/dynamic contract — claim zero detections at
# galint's statically-unobservable sites. The full-grid fixture
# comparison runs in the default `cargo test` (testgen_fixture.rs);
# here the quick strided grid pins coverage, margin and soundness.
cargo build -q --release -p ga-bench --bin testgen_campaign --bin heal_campaign
GA_BENCH_OUT="$SMOKE_DIR" GA_BENCH_QUICK=1 ./target/release/testgen_campaign > /dev/null
./target/release/benchcheck "$SMOKE_DIR/BENCH_testgen.json" \
    'coverage>=47' 'margin_vs_baseline>=1' 'unsound_detections<=0' \
    'probes>=3' 'fixture_mismatch<=0'

echo "== healing smoke (VRC heal campaign vs the exhaustive oracle)"
# Workload::VrcHeal through every registered 16-bit backend: the GA
# must heal >=90% of oracle-healable cases in quick mode (100% on the
# committed full grid) and never "heal" an oracle-unhealable one
# (ghost_heals). The report folds in the testgen headline so one
# artifact gates both halves of the closed fault loop.
GA_BENCH_OUT="$SMOKE_DIR" GA_BENCH_QUICK=1 \
    GA_BENCH_TESTGEN_REF="$SMOKE_DIR/BENCH_testgen.json" \
    ./target/release/heal_campaign > /dev/null
./target/release/benchcheck "$SMOKE_DIR/BENCH_ehw.json" \
    'heal_rate>=0.9' 'ghost_heals<=0' 'cases>=48' \
    'testgen_coverage>=47' 'testgen_unsound_detections<=0'

echo "== conformance (registry-driven cross-engine matrix, quick by default)"
# Every 16-bit engine in the registry (behavioral, swga, RTL
# interpreter, bitsim64 lane) must agree generation-for-generation, and
# the 32-bit rtl32 composite must match the behavioral dual-core model.
# The drive loop enumerates ga_engine::global(), so a newly registered
# backend is enrolled automatically. The quick matrix runs here; set
# GA_CONFORMANCE_FULL=1 for all six fitness functions and longer
# generation budgets.
cargo test -q --release --test conformance

echo "== engine registry enumeration (gaserved --list-backends)"
# The serving binary must list every expected backend with its
# capabilities — a registration regression fails here, not at runtime.
cargo build -q --release -p ga-serve --bin gaserved
BACKENDS="$(./target/release/gaserved --list-backends)"
echo "$BACKENDS"
[ "$(echo "$BACKENDS" | wc -l)" -ge 7 ] \
    || { echo "registry lists fewer than 7 backends"; exit 1; }
for b in behavioral rtl bitsim64 bitsim128 bitsim256 swga rtl32; do
    echo "$BACKENDS" | grep -q "^$b " \
        || { echo "backend $b missing from registry"; exit 1; }
done

echo "== gaserved golden fixture + BENCH_serve.json throughput floors"
# The serving layer replays the checked-in fixture (16-bit jobs on the
# narrow engines, width-32 jobs on rtl32, plus five VRC heal jobs —
# one deliberately unhealable); the output must be
# byte-identical to the committed golden (results are deterministic and
# carry no timing fields). benchcheck then validates the emitted
# report, requires per-backend throughput counters for every registered
# engine, and enforces a conservative jobs/sec floor.
GA_BENCH_OUT="$SMOKE_DIR" ./target/release/gaserved \
    --input tests/fixtures/jobs16.jsonl \
    --out "$SMOKE_DIR/results16.jsonl" --threads 4
diff -u tests/fixtures/results16_golden.jsonl "$SMOKE_DIR/results16.jsonl"
./target/release/benchcheck "$SMOKE_DIR/BENCH_serve.json" \
    --require-backend-throughput 'jobs>=15' 'jobs_per_sec>=25' \
    'netlist_cache_hits>=1' 'degraded_jobs<=0'

echo "== serve bench (200-job acceptance batch, pack-path throughput floor)"
# The wide-lane + cache acceptance gate: the packed bitsim path must
# clear >=10x the pre-widening 1202.89 jobs/s snapshot, with zero
# degraded lanes and at least one compiled-netlist cache hit.
cargo build -q --release -p ga-serve --bin serve_bench
GA_BENCH_OUT="$SMOKE_DIR" ./target/release/serve_bench 2> /dev/null
./target/release/benchcheck "$SMOKE_DIR/BENCH_serve.json" \
    'bitsim_pack_jobs_per_sec>=12029' 'bitsim_packs>=9' \
    'bitsim_active_lanes>=86' 'netlist_cache_hits>=1' 'degraded_jobs<=0'

echo "== persistent socket front-end (listener + streamed golden + load burst)"
# Boot the real TCP listener on an ephemeral port with its stdin held
# open on a fifo (closing the fifo is the std-only drain signal).
# A raw-socket client streams the batch fixture over one connection and
# must read back byte-identical golden lines; serve_load then drives a
# quick mixed-backend burst over four connections. The drain report is
# benchcheck'd with a sustained-rate floor, a behavioral tail-latency
# ceiling, and zero degraded jobs.
cargo build -q --release -p ga-serve --bin serve_load
LISTEN_DIR="$SMOKE_DIR/listen"
mkdir -p "$LISTEN_DIR"
rm -f "$LISTEN_DIR/stdin.fifo" # a stale fifo from an aborted run blocks mkfifo
mkfifo "$LISTEN_DIR/stdin.fifo"
# Hold the fifo open read-write on fd 9 so neither end blocks; the
# server must NOT inherit fd 9 (9<&-) or it would keep its own stdin
# writable and never see the shutdown EOF.
exec 9<>"$LISTEN_DIR/stdin.fifo"
GA_BENCH_OUT="$LISTEN_DIR" ./target/release/gaserved --listen 127.0.0.1:0 --threads 4 \
    <"$LISTEN_DIR/stdin.fifo" >"$LISTEN_DIR/listen.out" 2>"$LISTEN_DIR/listen.err" 9<&- &
LISTEN_PID=$!
LISTEN_ADDR=""
for _ in $(seq 1 100); do
    LISTEN_ADDR="$(sed -n 's/^listening //p' "$LISTEN_DIR/listen.out" 2>/dev/null || true)"
    [ -n "$LISTEN_ADDR" ] && break
    sleep 0.1
done
[ -n "$LISTEN_ADDR" ] || { echo "listener never announced its address"; exit 1; }
GOLDEN_LINES="$(wc -l < tests/fixtures/results16_golden.jsonl)"
exec 3<>"/dev/tcp/127.0.0.1/${LISTEN_ADDR##*:}"
cat tests/fixtures/jobs16.jsonl >&3
head -n "$GOLDEN_LINES" <&3 > "$LISTEN_DIR/streamed.jsonl"
exec 3<&- 3>&-
diff -u tests/fixtures/results16_golden.jsonl "$LISTEN_DIR/streamed.jsonl"
GA_BENCH_QUICK=1 ./target/release/serve_load --connect "$LISTEN_ADDR"
exec 9<&- 9>&-
wait "$LISTEN_PID"
cat "$LISTEN_DIR/listen.err"
./target/release/benchcheck "$LISTEN_DIR/BENCH_serve.json" \
    --require-backend-throughput 'jobs>=4831' 'jobs_per_sec>=2000' \
    'behavioral_p99_us<=5000' 'errors<=3' 'degraded_jobs<=0'

echo "== sharded islands smoke (multi-process ring, kill + resume, checkpoint floors)"
# Three gaserved --island-worker processes driven by the serve-layer
# coordinator over localhost sockets: every epoch's checkpoint bundle
# must equal the in-process IslandsDriver's byte for byte, one worker is
# SIGKILLed mid-run (the coordinator must surface the broken shard as a
# typed error), and the run resumes from the durable checkpoint file on
# bitsim64 workers — the campaign exits nonzero on any divergence.
# benchcheck pins the proof artifacts: zero-divergence resume, full
# migration traffic, and all five barrier bundles matched.
cargo build -q --release -p ga-serve --bin islands_campaign
GA_BENCH_OUT="$SMOKE_DIR" ./target/release/islands_campaign
./target/release/benchcheck "$SMOKE_DIR/BENCH_islands.json" \
    'shards>=3' 'epochs>=3' 'migrations>=9' 'resume_count>=1' \
    'resume_exact>=1' 'trajectory_matches>=5' 'checkpoint_bytes>=300'

echo "CI OK"
