#!/usr/bin/env bash
# CI gate: formatting, lints, the full test suite, and the static
# design-rule check over both shipping elaborations. Any failure —
# including a galint error-severity finding — fails the build.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace"
cargo test --workspace -q

echo "== galint --format json"
cargo run -q --release -p galint --bin galint -- --format json

echo "CI OK"
